// Package hhh implements epsilon-approximate hierarchical heavy hitter
// queries, one of the two extensions the paper states its approach applies
// to (Section 1.2). Items live in a prefix hierarchy (IP addresses are the
// canonical case); a hierarchical heavy hitter is a prefix whose count,
// after discounting the counts of its heavy-hitter descendants, still
// exceeds the support threshold.
//
// The estimator keeps one window-based lossy-counting summary per hierarchy
// level — each fed through the configured sorting backend, so the GPU
// acceleration applies at every level — and answers queries bottom-up with
// the standard discounting rule.
//
// Items flow through the estimation stack natively as unsigned integers.
// Earlier revisions squeezed prefixes into float32 stream values, which
// capped hierarchies at 24 bits (the float32 exact-integer range); with the
// generic stack the full 32- and 64-bit widths are supported, covering IPv4
// addresses outright and IPv6 /64 network prefixes.
package hhh

import (
	"fmt"
	"sort"

	"gpustream/internal/frequency"
	"gpustream/internal/sorter"
)

// Item constrains the integer item types a hierarchy aggregates: unsigned
// 32- or 64-bit values (both within the stack's sorter.Value constraint, so
// every sorting backend applies unchanged).
type Item interface {
	~uint32 | ~uint64
}

// Hierarchy maps items to their ancestors. Level 0 is the item itself;
// higher levels are coarser prefixes, with level Levels()-1 the root.
type Hierarchy[T Item] interface {
	// Levels reports the number of levels including the leaf level.
	Levels() int
	// Ancestor returns the item's enclosing prefix at the given level.
	Ancestor(item T, level int) T
}

// BitHierarchy is a prefix hierarchy over fixed-width integer items:
// level l masks off l*Stride low bits. With T = uint32, Bits = 32,
// Stride = 8 it is exactly the /32, /24, /16, /8, /0 aggregation of IPv4
// addresses; T = uint64 extends the same scheme to 64-bit key spaces.
type BitHierarchy[T Item] struct {
	Bits   int
	Stride int
}

// NewBitHierarchy returns a hierarchy over items of the given bit width
// aggregated stride bits at a time. Bits may use the item type's full width
// (32 for uint32, 64 for uint64).
func NewBitHierarchy[T Item](bits, stride int) BitHierarchy[T] {
	if bits <= 0 || bits > sorter.KeyBits[T]() || stride <= 0 || stride > bits {
		panic(fmt.Sprintf("hhh: invalid hierarchy bits=%d stride=%d for %d-bit items",
			bits, stride, sorter.KeyBits[T]()))
	}
	return BitHierarchy[T]{Bits: bits, Stride: stride}
}

// Levels implements Hierarchy.
func (h BitHierarchy[T]) Levels() int { return h.Bits/h.Stride + 1 }

// Ancestor implements Hierarchy.
func (h BitHierarchy[T]) Ancestor(item T, level int) T {
	shift := level * h.Stride
	if shift >= h.Bits {
		return 0
	}
	return item >> shift << shift
}

// Prefix is one reported hierarchical heavy hitter.
type Prefix[T Item] struct {
	Value T     // the prefix, low Stride*Level bits zero
	Level int   // 0 = leaf
	Count int64 // discounted estimated count
}

// Estimator answers eps-approximate HHH queries.
type Estimator[T Item] struct {
	h      Hierarchy[T]
	eps    float64
	levels []*frequency.Estimator[T]
	n      int64
}

// NewEstimator returns an HHH estimator with per-level error eps, sorting
// windows with s.
func NewEstimator[T Item](h Hierarchy[T], eps float64, s sorter.Sorter[T]) *Estimator[T] {
	e := &Estimator[T]{h: h, eps: eps}
	for l := 0; l < h.Levels(); l++ {
		e.levels = append(e.levels, frequency.NewEstimator(eps, s))
	}
	return e
}

// Count reports the number of processed items.
func (e *Estimator[T]) Count() int64 { return e.n }

// SummarySize reports total summary entries across all levels.
func (e *Estimator[T]) SummarySize() int {
	total := 0
	for _, lv := range e.levels {
		lv.Flush()
		total += lv.SummarySize()
	}
	return total
}

// Process consumes one item.
func (e *Estimator[T]) Process(item T) {
	e.n++
	for l, lv := range e.levels {
		lv.Process(e.h.Ancestor(item, l))
	}
}

// ProcessSlice consumes a batch of items.
func (e *Estimator[T]) ProcessSlice(items []T) {
	for _, it := range items {
		e.Process(it)
	}
}

// Query returns the hierarchical heavy hitters at support s: prefixes whose
// estimated count, discounted by the counts of already-reported descendant
// HHHs, is at least (s - eps) * N. Results are ordered leaf-most first,
// then by descending count.
func (e *Estimator[T]) Query(s float64) []Prefix[T] {
	if s < 0 || s > 1 {
		panic(fmt.Sprintf("hhh: support %v out of [0, 1]", s))
	}
	thresh := (s - e.eps) * float64(e.n)
	var out []Prefix[T]
	for l, lv := range e.levels {
		// Candidates at this level: everything the level summary reports
		// at the (s - eps) threshold.
		for _, it := range lv.Query(s) {
			p := it.Value
			count := it.Freq
			// Discount descendants already chosen.
			for _, d := range out {
				if d.Level < l && e.h.Ancestor(d.Value, l) == p {
					count -= d.Count
				}
			}
			if float64(count) >= thresh {
				out = append(out, Prefix[T]{Value: p, Level: l, Count: count})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// EstimateLevel returns the (undiscounted) estimated count of the given
// prefix at the given level.
func (e *Estimator[T]) EstimateLevel(prefix T, level int) int64 {
	if level < 0 || level >= len(e.levels) {
		panic(fmt.Sprintf("hhh: level %d out of range", level))
	}
	return e.levels[level].Estimate(prefix)
}
