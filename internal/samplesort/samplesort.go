// Package samplesort implements a deterministic sample sort over the
// sorter.Value types: pick splitters from an evenly-spaced oversampled
// sample, classify every element into one of k buckets with a fixed-depth
// branchless binary search, scatter the buckets contiguously into scratch,
// sort each bucket with the cache-resident quicksort, and concatenate.
//
// The comparison budget is O(n log n): n·log2(k) classification comparisons
// plus ~1.386·n·log2(n/k) expected quicksort comparisons inside the
// buckets. That undercuts PBSN's O(n log² n) comparator count, which is why
// the adaptive controller's closed-form prior favors this backend at large
// windows (the perfmodel crossover sits near n≈16K on the 2004 testbed
// constants). The splitter sample is evenly spaced — no RNG — so the sort
// is fully deterministic: the same input slice always takes the same
// bucket boundaries and the same comparison count, which keeps the op
// accounting reproducible across runs and element types.
//
// Like the GPU sorters, one instance serves one pipeline: the scratch
// buffers persist across Sort calls and SortAsync keeps the one-submission
// in-flight contract of sorter.AsyncSorter.
package samplesort

import (
	"math"

	"gpustream/internal/cpusort"
	"gpustream/internal/sorter"
)

const (
	// MinN is the input length below which sample sort degenerates to a
	// single direct quicksort: under ~2K values the scatter pass costs more
	// than the log-factor it saves.
	MinN = 2048

	// Oversample is the number of sample elements drawn per bucket. Eight
	// is the classic deterministic-sample-sort setting: enough to bound the
	// largest bucket near its fair share on skewed inputs without making
	// the sample sort itself significant.
	Oversample = 8

	// maxBuckets caps the splitter table so classification never exceeds
	// log2(512) = 9 comparisons per element and the table stays resident
	// in L1.
	maxBuckets = 512

	// targetBucketLen is the bucket size the bucket-count heuristic aims
	// for: small enough that the per-bucket quicksort runs cache-resident.
	targetBucketLen = 2048
)

// Buckets returns the deterministic bucket count used for an n-element
// sort: the largest power of two k ≤ 512 with k·2048 ≤ n, or 1 below MinN
// (direct quicksort). Power-of-two k keeps the classification loop a
// fixed-depth branchless binary search.
func Buckets(n int) int {
	if n < MinN {
		return 1
	}
	k := 2
	for k < maxBuckets && k*2*targetBucketLen <= n {
		k <<= 1
	}
	return k
}

// SortStats records the operation counts of one sort (or accumulates over
// all sorts, for TotalStats). All counters are functions of the input
// length and order structure only — never of the element type — matching
// the type-invariant cost-model contract the GPU backends pin with
// TestSortStatsTypeInvariant.
type SortStats struct {
	// N is the number of values sorted.
	N int
	// Buckets is the bucket count chosen by Buckets(N).
	Buckets int
	// SampleCmps estimates the comparisons spent sorting the splitter
	// sample (1.386·m·log2 m for the m-element sample).
	SampleCmps int64
	// ScatterCmps counts the classification comparisons: exactly
	// N·log2(Buckets), data-independent by construction.
	ScatterCmps int64
	// BucketCmps estimates the comparisons inside the per-bucket
	// quicksorts (Σ 1.386·b·log2 b over the realized bucket lengths b).
	BucketCmps int64
	// MoveOps counts element moves: one scatter into scratch plus one copy
	// back, 2·N when bucketing ran.
	MoveOps int64
	// BytesMoved models the memory traffic of MoveOps at the pipeline's
	// 4-byte texel convention, the same unit the GPU sorters charge bus
	// transfers in.
	BytesMoved int64
}

// add accumulates o into s.
func (s *SortStats) add(o SortStats) {
	s.N += o.N
	s.Buckets += o.Buckets
	s.SampleCmps += o.SampleCmps
	s.ScatterCmps += o.ScatterCmps
	s.BucketCmps += o.BucketCmps
	s.MoveOps += o.MoveOps
	s.BytesMoved += o.BytesMoved
}

// estCmps is the expected quicksort comparison count for n values,
// 1.386·n·log2 n — the same closed form perfmodel charges the CPU sorts
// with (Section 6's quicksort baseline).
func estCmps(n int) int64 {
	if n < 2 {
		return 0
	}
	return int64(1.386 * float64(n) * math.Log2(float64(n)))
}

// Sorter is the deterministic sample-sort backend. One instance per
// pipeline: the scratch buffers are reused across calls and are not safe
// for concurrent Sorts.
type Sorter[T sorter.Value] struct {
	last      SortStats
	total     SortStats
	sorts     int64
	sample    []T
	splitters []T
	scratch   []T
	ids       []uint16
	counts    []int
	offs      []int
}

// NewSorter returns a sample sorter for element type T.
func NewSorter[T sorter.Value]() *Sorter[T] { return &Sorter[T]{} }

// Name implements sorter.Sorter.
func (s *Sorter[T]) Name() string { return "samplesort" }

// LastStats returns the operation counts of the most recent Sort.
func (s *Sorter[T]) LastStats() SortStats { return s.last }

// TotalStats returns counts accumulated over every Sort since creation.
func (s *Sorter[T]) TotalStats() SortStats { return s.total }

// Sorts returns the number of completed Sort calls.
func (s *Sorter[T]) Sorts() int64 { return s.sorts }

// Sort orders data ascending in place.
func (s *Sorter[T]) Sort(data []T) {
	n := len(data)
	k := Buckets(n)
	st := SortStats{N: n, Buckets: k}
	if k < 2 {
		cpusort.Quicksort(data)
		st.BucketCmps = estCmps(n)
		s.finish(st)
		return
	}

	// Splitter selection: an evenly-spaced deterministic sample of
	// k·Oversample elements, sorted, thinned to k-1 splitters.
	m := k * Oversample
	if cap(s.sample) < m {
		s.sample = make([]T, m)
	}
	sample := s.sample[:m]
	stride := n / m // ≥ MinN/(2·Oversample) > 0 whenever k ≥ 2
	for i := range sample {
		sample[i] = data[i*stride]
	}
	cpusort.Quicksort(sample)
	st.SampleCmps = estCmps(m)
	if cap(s.splitters) < k-1 {
		s.splitters = make([]T, k-1)
	}
	sp := s.splitters[:k-1]
	for i := range sp {
		sp[i] = sample[(i+1)*Oversample-1]
	}

	// Classification: branchless binary search over the splitter table,
	// exactly log2(k) comparisons per element regardless of the data. The
	// computed bucket is |{i : sp[i] ≤ v}|, so equal values always share a
	// bucket and stability of the boundaries is deterministic.
	logk := 0
	for 1<<logk < k {
		logk++
	}
	if cap(s.ids) < n {
		s.ids = make([]uint16, n)
	}
	ids := s.ids[:n]
	if cap(s.counts) < k {
		s.counts = make([]int, k)
		s.offs = make([]int, k)
	}
	counts := s.counts[:k]
	for i := range counts {
		counts[i] = 0
	}
	offs := s.offs[:k]
	for i, v := range data {
		b := 0
		for w := k >> 1; w > 0; w >>= 1 {
			if v >= sp[b+w-1] {
				b += w
			}
		}
		ids[i] = uint16(b)
		counts[b]++
	}
	st.ScatterCmps = int64(n) * int64(logk)

	// Scatter into contiguous buckets, sort each bucket in place, copy the
	// concatenation back.
	if cap(s.scratch) < n {
		s.scratch = make([]T, n)
	}
	scratch := s.scratch[:n]
	off := 0
	for b, c := range counts {
		offs[b] = off
		off += c
	}
	for i, v := range data {
		b := ids[i]
		scratch[offs[b]] = v
		offs[b]++
	}
	off = 0
	for _, c := range counts {
		cpusort.Quicksort(scratch[off : off+c])
		st.BucketCmps += estCmps(c)
		off += c
	}
	copy(data, scratch)
	st.MoveOps = int64(2 * n)
	st.BytesMoved = st.MoveOps * 4

	s.finish(st)
}

func (s *Sorter[T]) finish(st SortStats) {
	s.last = st
	s.total.add(st)
	s.sorts++
}

// SortAsync implements sorter.AsyncSorter by offloading Sort to a
// goroutine, modeling a sort running on another core. One submission in
// flight per instance, per the AsyncSorter contract.
func (s *Sorter[T]) SortAsync(data []T) *sorter.Handle {
	return sorter.Submit[T](s, data)
}

var (
	_ sorter.Sorter[float32]      = (*Sorter[float32])(nil)
	_ sorter.AsyncSorter[float32] = (*Sorter[float32])(nil)
	_ sorter.Sorter[uint64]       = (*Sorter[uint64])(nil)
	_ sorter.AsyncSorter[uint64]  = (*Sorter[uint64])(nil)
)
