package samplesort

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"

	"gpustream/internal/sorter"
)

// distributions used across the correctness matrix. Each returns n values
// with a distinct order structure: uniform random, heavy-duplicate zipf,
// already sorted, reversed, and all-equal.
func distributions(n int, rng *rand.Rand) map[string][]float32 {
	uniform := make([]float32, n)
	for i := range uniform {
		uniform[i] = rng.Float32()*2000 - 1000
	}
	zipf := make([]float32, n)
	z := rand.NewZipf(rng, 1.1, 1, uint64(n/50+10))
	for i := range zipf {
		zipf[i] = float32(z.Uint64())
	}
	sorted := make([]float32, n)
	for i := range sorted {
		sorted[i] = float32(i)
	}
	reversed := make([]float32, n)
	for i := range reversed {
		reversed[i] = float32(n - i)
	}
	equal := make([]float32, n)
	for i := range equal {
		equal[i] = 42
	}
	return map[string][]float32{
		"uniform": uniform, "zipf": zipf, "sorted": sorted,
		"reversed": reversed, "all-equal": equal,
	}
}

func TestSortMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSorter[float32]()
	for _, n := range []int{0, 1, 2, 100, MinN - 1, MinN, MinN + 1, 10_000, 200_000} {
		for name, data := range distributions(n, rng) {
			want := append([]float32(nil), data...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := append([]float32(nil), data...)
			s.Sort(got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d %s: mismatch at %d: got %v want %v", n, name, i, got[i], want[i])
				}
			}
			if st := s.LastStats(); st.N != n || st.Buckets != Buckets(n) {
				t.Fatalf("n=%d %s: stats header N=%d Buckets=%d", n, name, st.N, st.Buckets)
			}
		}
	}
}

func TestSortIntegerTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 50_000
	data := make([]uint64, n)
	for i := range data {
		data[i] = rng.Uint64()
	}
	want := append([]uint64(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	s := NewSorter[uint64]()
	s.Sort(data)
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("uint64 mismatch at %d", i)
		}
	}
}

// TestSortStatsTypeInvariant pins the cost-model contract: sorting
// order-isomorphic images of the same data as float32 and as uint64 must
// produce identical operation counts. The uint64 image is the rank of each
// element, which preserves every comparison outcome.
func TestSortStatsTypeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40_000
	f := make([]float32, n)
	for i := range f {
		f[i] = rng.Float32()
	}
	// Build the order-isomorphic uint64 image: element i maps to its rank.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return f[idx[a]] < f[idx[b]] })
	u := make([]uint64, n)
	for r, i := range idx {
		u[i] = uint64(r)
	}

	sf := NewSorter[float32]()
	sf.Sort(append([]float32(nil), f...))
	su := NewSorter[uint64]()
	su.Sort(u)
	if sf.LastStats() != su.LastStats() {
		t.Fatalf("op counts depend on element type:\nfloat32: %+v\nuint64:  %+v",
			sf.LastStats(), su.LastStats())
	}
	st := sf.LastStats()
	logk := int64(math.Log2(float64(st.Buckets)))
	if st.ScatterCmps != int64(n)*logk {
		t.Fatalf("ScatterCmps = %d, want n·log2(k) = %d", st.ScatterCmps, int64(n)*logk)
	}
	if st.MoveOps != int64(2*n) || st.BytesMoved != int64(8*n) {
		t.Fatalf("MoveOps=%d BytesMoved=%d, want %d/%d", st.MoveOps, st.BytesMoved, 2*n, 8*n)
	}
}

func TestSortDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float32, 30_000)
	for i := range data {
		data[i] = rng.Float32()
	}
	s := NewSorter[float32]()
	s.Sort(append([]float32(nil), data...))
	first := s.LastStats()
	s.Sort(append([]float32(nil), data...))
	if s.LastStats() != first {
		t.Fatalf("same input, different op counts: %+v vs %+v", first, s.LastStats())
	}
	if s.Sorts() != 2 || s.TotalStats().N != 2*len(data) {
		t.Fatalf("accumulation: sorts=%d totalN=%d", s.Sorts(), s.TotalStats().N)
	}
}

func TestSortAsync(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewSorter[float32]()
	data := make([]float32, 20_000)
	for i := range data {
		data[i] = rng.Float32()
	}
	want := append([]float32(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	h := s.SortAsync(data)
	h.Wait()
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("async sort mismatch at %d", i)
		}
	}
	var _ sorter.AsyncSorter[float32] = s
}

func TestBuckets(t *testing.T) {
	cases := []struct{ n, k int }{
		{0, 1}, {MinN - 1, 1}, {MinN, 2}, {4 * targetBucketLen, 4},
		{1 << 20, 512}, {10 << 20, 512}, {1 << 30, 512},
	}
	for _, c := range cases {
		if got := Buckets(c.n); got != c.k {
			t.Errorf("Buckets(%d) = %d, want %d", c.n, got, c.k)
		}
		if k := Buckets(c.n); k&(k-1) != 0 {
			t.Errorf("Buckets(%d) = %d not a power of two", c.n, k)
		}
	}
}

// FuzzSampleSort feeds arbitrary byte strings reinterpreted as float32
// values (NaN excluded, as everywhere in the stack) through the sample
// sorter and checks the result against the standard library sort.
func FuzzSampleSort(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	seed := make([]byte, 4*MinN)
	for i := 0; i < len(seed); i += 4 {
		binary.LittleEndian.PutUint32(seed[i:], uint32(i*2654435761))
	}
	f.Add(seed)
	srt := NewSorter[float32]()
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 4
		data := make([]float32, 0, n)
		for i := 0; i < n; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			if v != v { // skip NaN: the Value contract excludes it
				continue
			}
			data = append(data, v)
		}
		want := append([]float32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		srt.Sort(data)
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("mismatch at %d: got %v want %v", i, data[i], want[i])
			}
		}
	})
}
