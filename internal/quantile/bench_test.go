package quantile

import (
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
	"gpustream/internal/summary"
)

var benchData = stream.Uniform(1<<16, 1)

func BenchmarkWindowedEstimator(b *testing.B) {
	b.SetBytes(int64(len(benchData) * 4))
	for i := 0; i < b.N; i++ {
		e := NewEstimator(0.001, int64(len(benchData)), cpusort.QuicksortSorter[float32]{})
		e.ProcessSlice(benchData)
		_ = e.Query(0.5)
	}
}

func BenchmarkGKSingleElement(b *testing.B) {
	b.SetBytes(int64(len(benchData) * 4))
	for i := 0; i < b.N; i++ {
		g := summary.NewGK[float32](0.001)
		for _, v := range benchData {
			g.Insert(v)
		}
		_ = g.Query(0.5)
	}
}
