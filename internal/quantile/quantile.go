// Package quantile implements the paper's epsilon-approximate quantile
// estimation over data streams (Section 5.2): Greenwald-Khanna's
// sensor-network algorithm extended to the stream model with an exponential
// histogram of summaries. Each incoming window is sorted (the GPU-
// accelerated step), reduced to an (eps/2)-approximate summary with exact
// ranks, and inserted as a bucket of id 1; whenever two buckets share an id
// they are combined by a merge and a prune whose error budget grows with the
// bucket id, so the total error never exceeds eps.
//
// Windowing, buffering, lifecycle, locking, and telemetry come from the
// shared internal/pipeline core; this package contributes the
// sort -> summarize -> cascade-combine sink. Queries are safe under
// concurrent ingestion, and Snapshot returns an immutable view: bucket
// summaries are never mutated once published (MergeInto writes only the
// cascade scratch, Prune and FromSortedWindow allocate fresh entries), so a
// view is just a handle on the merged summary of the moment.
package quantile

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// Estimator answers eps-approximate quantile queries over a stream whose
// maximum length is known a priori (as the paper assumes); Capacity may be
// generous without much cost since only its logarithm matters.
//
// One writer and any number of query goroutines may use an Estimator
// concurrently.
type Estimator[T sorter.Value] struct {
	eps      float64
	window   int // construction-time window, the floor of any tuned schedule
	levels   int
	pruneB   int
	core     *pipeline.Core[T]
	buckets  map[int]*summary.Summary[T]
	n        int64 // elements folded into buckets (excludes buffered)
	capacity int64

	// mergeTmp is the reusable scratch for the cascade's intermediate
	// merged summaries, which never escape flushWindow: reusing it removes
	// the dominant per-combine allocation.
	mergeTmp *summary.Summary[T]

	// snapshot cache: queries against an unchanged stream reuse the merged
	// summary instead of re-merging every bucket.
	snapCache *summary.Summary[T]
	snapState [2]int64 // (n, buffered) the cache was built at
}

// Option configures an Estimator. Options are type-independent (they tune
// window geometry, not values), so one Option works at any instantiation.
type Option func(*config)

// config collects the type-independent knobs an Option may set.
type config struct {
	window int
	async  bool
}

// WithWindow overrides the buffered window size (default ceil(1/eps)).
func WithWindow(w int) Option {
	return func(e *config) {
		if w <= 0 {
			panic("quantile: window must be positive")
		}
		e.window = w
	}
}

// WithAsync enables staged asynchronous ingestion: windows sort on a
// dedicated stage goroutine overlapping the cascade combines of the previous
// window. Answers are bit-identical to synchronous mode.
func WithAsync() Option { return func(e *config) { e.async = true } }

// NewEstimator returns an eps-approximate quantile estimator for streams of
// up to capacity elements, sorting windows with s. capacity <= 0 selects a
// generous default (2^40).
func NewEstimator[T sorter.Value](eps float64, capacity int64, s sorter.Sorter[T], opts ...Option) *Estimator[T] {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("quantile: eps %v out of (0, 1)", eps))
	}
	if capacity <= 0 {
		capacity = 1 << 40
	}
	cfg := config{window: int(math.Ceil(1 / eps))}
	for _, o := range opts {
		o(&cfg)
	}
	e := &Estimator[T]{
		eps:      eps,
		window:   cfg.window,
		buckets:  make(map[int]*summary.Summary[T]),
		capacity: capacity,
		mergeTmp: &summary.Summary[T]{},
	}
	// L bounds the bucket id: windows cascade like a binary counter, so at
	// most log2(capacity/window)+1 combines happen along any chain.
	maxWindows := capacity/int64(e.window) + 1
	e.levels = 1
	for int64(1)<<e.levels < maxWindows {
		e.levels++
	}
	e.levels++ // slack for the final partial window
	// Each combine adds 1/(2B) error; choose B so that is eps/(2L).
	e.pruneB = int(math.Ceil(float64(e.levels) / eps))
	e.core = pipeline.NewStagedCore(e.window, s, e.mergeWindow)
	if cfg.async {
		e.core.StartAsync()
	}
	return e
}

// Eps reports the configured error bound.
func (e *Estimator[T]) Eps() float64 { return e.eps }

// WindowSize reports the current buffered window length. It equals the
// construction-time window unless a tuner has rescheduled it.
func (e *Estimator[T]) WindowSize() int { return e.core.WindowSize() }

// SetTuner installs a runtime controller over the pipeline's sorter and
// window knobs; it must be called before ingestion. Schedules must keep
// windows >= the construction window: the level budget L was sized from
// capacity/window, and growing windows only shortens cascade chains while
// FromSortedWindow's eps/2 summary error is window-size independent, so
// any such schedule stays within the eps bound.
func (e *Estimator[T]) SetTuner(t pipeline.Tuner[T]) { e.core.SetTuner(t) }

// Knobs reports the currently selected sorter and window size.
func (e *Estimator[T]) Knobs() (sorter.Sorter[T], int) { return e.core.Tuning() }

// Async reports the commanded execution mode: overlapped staged execution
// when true (WithAsync at construction or a tuner's AsyncOn), inline
// synchronous execution otherwise.
func (e *Estimator[T]) Async() bool { return e.core.Async() }

// Count reports the number of stream elements processed, including buffered
// ones.
func (e *Estimator[T]) Count() int64 { return e.core.Count() }

// Stats returns the unified per-stage pipeline telemetry. Safe to call
// mid-ingestion; counters are internally consistent.
func (e *Estimator[T]) Stats() pipeline.Stats { return e.core.Stats() }

// SummaryEntries reports the total entries retained across all buckets, the
// estimator's memory footprint.
func (e *Estimator[T]) SummaryEntries() int {
	e.core.Lock()
	defer e.core.Unlock()
	e.core.BarrierLocked()
	total := 0
	for _, b := range e.buckets {
		total += b.Size()
	}
	return total
}

// Buckets reports the number of live exponential-histogram buckets.
func (e *Estimator[T]) Buckets() int {
	e.core.Lock()
	defer e.core.Unlock()
	e.core.BarrierLocked()
	return len(e.buckets)
}

// Process consumes one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (e *Estimator[T]) Process(v T) error { return e.core.Process(v) }

// ProcessSlice consumes a batch of stream elements. After Close it returns
// an error wrapping pipeline.ErrClosed.
func (e *Estimator[T]) ProcessSlice(data []T) error { return e.core.ProcessSlice(data) }

// Flush forces the buffered partial window into the bucket cascade. Queries
// do not need it — snapshots already include buffered elements — but it
// makes the estimator's state self-contained before Close or hand-off.
func (e *Estimator[T]) Flush() error { return e.core.Flush() }

// Close flushes and releases the window buffer back to the shared pool.
// The estimator remains queryable; further ingestion reports
// pipeline.ErrClosed. Close is idempotent.
func (e *Estimator[T]) Close() error { return e.core.Close() }

// mergeWindow is the merge-stage half of the pipeline: it receives a window
// the core has already sorted (inline, or on the sort stage goroutine in
// async mode), reduces it to a summary, and cascades combines. The core
// holds the lock around the call in both modes.
func (e *Estimator[T]) mergeWindow(win []T) {
	// Reducing the sorted window to an (eps/2)-summary belongs to the sort
	// (window preparation) stage of the paper's accounting; the values were
	// already counted when the core timed the sort itself.
	t0 := time.Now()
	s := summary.FromSortedWindow(win, e.eps)
	e.core.AddSort(time.Since(t0), 0)
	e.n += int64(len(win))

	id := 1
	for {
		old, ok := e.buckets[id]
		if !ok {
			e.buckets[id] = s
			return
		}
		delete(e.buckets, id)
		t1 := time.Now()
		m := summary.MergeInto(e.mergeTmp, old, s)
		e.core.AddMerge(time.Since(t1), int64(m.Size()))
		t2 := time.Now()
		s = m.Prune(e.pruneB)
		e.core.AddCompress(time.Since(t2), int64(m.Size()))
		id++
		if id > e.levels+1 {
			// Beyond the provisioned depth the error budget no longer
			// grows; park the summary at the top level.
			if top, ok := e.buckets[id]; ok {
				s = summary.MergeInto(e.mergeTmp, top, s).Prune(e.pruneB)
			}
			e.buckets[id] = s
			return
		}
	}
}

// snapshotLocked merges the live buckets and the buffered partial window
// into one queryable summary without disturbing the estimator state. The
// result is cached until more elements arrive; the caller must hold the
// core lock. The returned summary is immutable — flushWindow only ever
// replaces buckets with freshly allocated summaries — so it may safely
// outlive the locked region.
func (e *Estimator[T]) snapshotLocked() *summary.Summary[T] {
	// Drain in-flight windows first: the buckets must cover the whole
	// emitted prefix and the sorter must be idle before the partial-window
	// sort below may reuse it.
	e.core.BarrierLocked()
	state := [2]int64{e.n, int64(e.core.BufferedLocked())}
	if e.snapCache != nil && e.snapState == state {
		return e.snapCache
	}
	var partial *summary.Summary[T]
	if e.core.BufferedLocked() > 0 {
		tmp := append(e.core.Scratch(e.core.BufferedLocked()), e.core.Partial()...)
		t0 := time.Now()
		e.core.SorterLocked().Sort(tmp)
		partial = summary.FromSortedWindow(tmp, e.eps)
		e.core.AddSort(time.Since(t0), 0)
	}
	ids := make([]int, 0, len(e.buckets))
	for id := range e.buckets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var acc *summary.Summary[T]
	for _, id := range ids {
		if acc == nil {
			acc = e.buckets[id]
		} else {
			acc = summary.Merge(acc, e.buckets[id])
		}
	}
	switch {
	case acc == nil:
		acc = partial
	case partial != nil:
		acc = summary.Merge(acc, partial)
	}
	e.snapCache, e.snapState = acc, state
	return acc
}

// merged returns the current merged summary under the lock.
func (e *Estimator[T]) merged() *summary.Summary[T] {
	e.core.Lock()
	defer e.core.Unlock()
	return e.snapshotLocked()
}

// Query returns an eps-approximate phi-quantile of everything processed so
// far. It panics if the stream is empty. Safe under concurrent ingestion.
func (e *Estimator[T]) Query(phi float64) T {
	s := e.merged()
	if s == nil || s.N == 0 {
		panic("quantile: query on empty stream")
	}
	return s.Query(phi)
}

// QueryRank returns a value whose rank is within eps*N of r. Safe under
// concurrent ingestion.
func (e *Estimator[T]) QueryRank(r int64) T {
	s := e.merged()
	if s == nil || s.N == 0 {
		panic("quantile: query on empty stream")
	}
	return s.QueryRank(r)
}

// Summary exposes the merged snapshot, mainly for validation harnesses.
func (e *Estimator[T]) Summary() *summary.Summary[T] { return e.merged() }

// Snapshot is an immutable point-in-time view of a quantile estimator: a
// handle on the merged GK summary of the moment. It is safe for concurrent
// use and implements pipeline.View.
type Snapshot[T sorter.Value] struct {
	sum *summary.Summary[T] // nil when the snapshot covers an empty stream
	eps float64
}

// Snapshot returns an immutable view covering everything processed so far,
// including the buffered partial window. The view never sees ingestion that
// happens after this call.
func (e *Estimator[T]) Snapshot() pipeline.View[T] {
	return &Snapshot[T]{sum: e.merged(), eps: e.eps}
}

// NewSnapshot wraps an already-merged summary (may be nil for an empty
// stream) as an immutable view. Sharded ingestion uses it to publish the
// cross-shard merge.
func NewSnapshot[T sorter.Value](sum *summary.Summary[T], eps float64) *Snapshot[T] {
	return &Snapshot[T]{sum: sum, eps: eps}
}

// Count reports the stream length the snapshot covers.
func (s *Snapshot[T]) Count() int64 {
	if s.sum == nil {
		return 0
	}
	return s.sum.N
}

// Size reports the retained summary entries.
func (s *Snapshot[T]) Size() int {
	if s.sum == nil {
		return 0
	}
	return s.sum.Size()
}

// Eps reports the snapshot's error bound.
func (s *Snapshot[T]) Eps() float64 { return s.eps }

// Query returns an eps-approximate phi-quantile. It panics if the snapshot
// covers an empty stream (use Quantile for the non-panicking form).
func (s *Snapshot[T]) Query(phi float64) T {
	if s.sum == nil || s.sum.N == 0 {
		panic("quantile: query on empty stream")
	}
	return s.sum.Query(phi)
}

// QueryRank returns a value whose rank is within eps*N of r. It panics if
// the snapshot covers an empty stream.
func (s *Snapshot[T]) QueryRank(r int64) T {
	if s.sum == nil || s.sum.N == 0 {
		panic("quantile: query on empty stream")
	}
	return s.sum.QueryRank(r)
}

// Summary exposes the underlying merged summary (nil for an empty stream).
// Callers must treat it as read-only.
func (s *Snapshot[T]) Summary() *summary.Summary[T] { return s.sum }

// Quantile implements pipeline.View; ok is false on an empty stream.
func (s *Snapshot[T]) Quantile(phi float64) (T, bool) {
	if s.sum == nil || s.sum.N == 0 {
		var z T
		return z, false
	}
	return s.sum.Query(phi), true
}

// HeavyHitters implements pipeline.View; quantile sketches do not answer
// frequency queries.
func (s *Snapshot[T]) HeavyHitters(float64) ([]pipeline.Item[T], bool) { return nil, false }

// Frequency implements pipeline.View; quantile sketches do not answer
// point-frequency queries.
func (s *Snapshot[T]) Frequency(T) (int64, bool) { return 0, false }
