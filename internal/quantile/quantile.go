// Package quantile implements the paper's epsilon-approximate quantile
// estimation over data streams (Section 5.2): Greenwald-Khanna's
// sensor-network algorithm extended to the stream model with an exponential
// histogram of summaries. Each incoming window is sorted (the GPU-
// accelerated step), reduced to an (eps/2)-approximate summary with exact
// ranks, and inserted as a bucket of id 1; whenever two buckets share an id
// they are combined by a merge and a prune whose error budget grows with the
// bucket id, so the total error never exceeds eps.
package quantile

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// Counts instruments the pipeline in backend-independent units (same shape
// as the frequency pipeline's counters).
type Counts struct {
	Windows      int64
	SortedValues int64
	MergeOps     int64 // summary entries visited during bucket combines
	CompressOps  int64 // summary entries visited during prunes
}

// Timings records measured host wall time per phase.
type Timings struct {
	Sort, Merge, Compress time.Duration
}

// Total sums the phases.
func (t Timings) Total() time.Duration { return t.Sort + t.Merge + t.Compress }

// Estimator answers eps-approximate quantile queries over a stream whose
// maximum length is known a priori (as the paper assumes); Capacity may be
// generous without much cost since only its logarithm matters.
type Estimator struct {
	eps      float64
	window   int
	levels   int
	pruneB   int
	sorter   sorter.Sorter
	buckets  map[int]*summary.Summary
	buf      []float32
	n        int64
	counts   Counts
	timings  Timings
	capacity int64

	// snapshot cache: queries against an unchanged stream reuse the merged
	// summary instead of re-merging every bucket.
	snapCache *summary.Summary
	snapState [2]int64 // (n, len(buf)) the cache was built at
}

// Option configures an Estimator.
type Option func(*Estimator)

// WithWindow overrides the buffered window size (default ceil(1/eps)).
func WithWindow(w int) Option {
	return func(e *Estimator) {
		if w <= 0 {
			panic("quantile: window must be positive")
		}
		e.window = w
	}
}

// NewEstimator returns an eps-approximate quantile estimator for streams of
// up to capacity elements, sorting windows with s. capacity <= 0 selects a
// generous default (2^40).
func NewEstimator(eps float64, capacity int64, s sorter.Sorter, opts ...Option) *Estimator {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("quantile: eps %v out of (0, 1)", eps))
	}
	if capacity <= 0 {
		capacity = 1 << 40
	}
	e := &Estimator{
		eps:      eps,
		window:   int(math.Ceil(1 / eps)),
		sorter:   s,
		buckets:  make(map[int]*summary.Summary),
		capacity: capacity,
	}
	for _, o := range opts {
		o(e)
	}
	// L bounds the bucket id: windows cascade like a binary counter, so at
	// most log2(capacity/window)+1 combines happen along any chain.
	maxWindows := capacity/int64(e.window) + 1
	e.levels = 1
	for int64(1)<<e.levels < maxWindows {
		e.levels++
	}
	e.levels++ // slack for the final partial window
	// Each combine adds 1/(2B) error; choose B so that is eps/(2L).
	e.pruneB = int(math.Ceil(float64(e.levels) / eps))
	e.buf = make([]float32, 0, e.window)
	return e
}

// Eps reports the configured error bound.
func (e *Estimator) Eps() float64 { return e.eps }

// WindowSize reports the buffered window length.
func (e *Estimator) WindowSize() int { return e.window }

// Count reports the number of stream elements processed, including buffered
// ones.
func (e *Estimator) Count() int64 { return e.n + int64(len(e.buf)) }

// Counts returns the pipeline instrumentation counters.
func (e *Estimator) Counts() Counts { return e.counts }

// Timings returns measured per-phase host wall time.
func (e *Estimator) Timings() Timings { return e.timings }

// SummaryEntries reports the total entries retained across all buckets, the
// estimator's memory footprint.
func (e *Estimator) SummaryEntries() int {
	total := 0
	for _, b := range e.buckets {
		total += b.Size()
	}
	return total
}

// Buckets reports the number of live exponential-histogram buckets.
func (e *Estimator) Buckets() int { return len(e.buckets) }

// Process consumes one stream element.
func (e *Estimator) Process(v float32) {
	e.buf = append(e.buf, v)
	if len(e.buf) == e.window {
		e.flush()
	}
}

// ProcessSlice consumes a batch of stream elements.
func (e *Estimator) ProcessSlice(data []float32) {
	for len(data) > 0 {
		room := e.window - len(e.buf)
		if room > len(data) {
			room = len(data)
		}
		e.buf = append(e.buf, data[:room]...)
		data = data[room:]
		if len(e.buf) == e.window {
			e.flush()
		}
	}
}

// flush turns the buffered window into a bucket and cascades combines.
func (e *Estimator) flush() {
	t0 := time.Now()
	e.sorter.Sort(e.buf)
	s := summary.FromSortedWindow(e.buf, e.eps)
	e.timings.Sort += time.Since(t0)
	e.counts.Windows++
	e.counts.SortedValues += int64(len(e.buf))
	e.n += int64(len(e.buf))
	e.buf = e.buf[:0]

	id := 1
	for {
		old, ok := e.buckets[id]
		if !ok {
			e.buckets[id] = s
			return
		}
		delete(e.buckets, id)
		t1 := time.Now()
		m := summary.Merge(old, s)
		e.counts.MergeOps += int64(m.Size())
		e.timings.Merge += time.Since(t1)
		t2 := time.Now()
		s = m.Prune(e.pruneB)
		e.counts.CompressOps += int64(m.Size())
		e.timings.Compress += time.Since(t2)
		id++
		if id > e.levels+1 {
			// Beyond the provisioned depth the error budget no longer
			// grows; park the summary at the top level.
			if top, ok := e.buckets[id]; ok {
				s = summary.Merge(top, s).Prune(e.pruneB)
			}
			e.buckets[id] = s
			return
		}
	}
}

// snapshot merges the live buckets and the buffered partial window into one
// queryable summary without disturbing the estimator state. The result is
// cached until more elements arrive.
func (e *Estimator) snapshot() *summary.Summary {
	state := [2]int64{e.n, int64(len(e.buf))}
	if e.snapCache != nil && e.snapState == state {
		return e.snapCache
	}
	var partial *summary.Summary
	if len(e.buf) > 0 {
		tmp := append([]float32(nil), e.buf...)
		t0 := time.Now()
		e.sorter.Sort(tmp)
		partial = summary.FromSortedWindow(tmp, e.eps)
		e.timings.Sort += time.Since(t0)
	}
	ids := make([]int, 0, len(e.buckets))
	for id := range e.buckets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var acc *summary.Summary
	for _, id := range ids {
		if acc == nil {
			acc = e.buckets[id]
		} else {
			acc = summary.Merge(acc, e.buckets[id])
		}
	}
	switch {
	case acc == nil:
		acc = partial
	case partial != nil:
		acc = summary.Merge(acc, partial)
	}
	e.snapCache, e.snapState = acc, state
	return acc
}

// Query returns an eps-approximate phi-quantile of everything processed so
// far. It panics if the stream is empty.
func (e *Estimator) Query(phi float64) float32 {
	s := e.snapshot()
	if s == nil || s.N == 0 {
		panic("quantile: query on empty stream")
	}
	return s.Query(phi)
}

// QueryRank returns a value whose rank is within eps*N of r.
func (e *Estimator) QueryRank(r int64) float32 {
	s := e.snapshot()
	if s == nil || s.N == 0 {
		panic("quantile: query on empty stream")
	}
	return s.QueryRank(r)
}

// Summary exposes the merged snapshot, mainly for validation harnesses.
func (e *Estimator) Summary() *summary.Summary { return e.snapshot() }
