package quantile

import (
	"math"

	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// MergeSnapshots combines two quantile snapshots over disjoint substreams
// into one over their union, by the Greenwald-Khanna sensor-network
// rank-combination rule (summary.Merge): the merged summary is
// max(epsA, epsB)-approximate over NA+NB elements, so merging is
// error-preserving at any tree height (DESIGN.md sections 7 and 12).
//
// It is the cross-process form of the shard merge rule: sharded ingestion
// folds it over its per-shard snapshots, and the aggregation tree folds it
// over per-process snapshots exchanged through the wire format. The inputs
// are not mutated and may be used afterwards; an input covering an empty
// stream passes the other through.
func MergeSnapshots[T sorter.Value](a, b *Snapshot[T]) *Snapshot[T] {
	eps := math.Max(a.eps, b.eps)
	switch {
	case a.sum == nil || a.sum.N == 0:
		return &Snapshot[T]{sum: b.sum, eps: eps}
	case b.sum == nil || b.sum.N == 0:
		return &Snapshot[T]{sum: a.sum, eps: eps}
	}
	return &Snapshot[T]{sum: summary.Merge(a.sum, b.sum), eps: eps}
}
