package quantile

import (
	"testing"
	"testing/quick"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
	"gpustream/internal/summary"
)

func newCPU(eps float64, cap int64, opts ...Option) *Estimator[float32] {
	return NewEstimator(eps, cap, cpusort.QuicksortSorter[float32]{}, opts...)
}

// rankError returns the normalized error of the estimator against the full
// data, probing a grid of quantiles.
func rankError(t *testing.T, e *Estimator[float32], data []float32) float64 {
	t.Helper()
	s := e.Summary()
	if s.N != int64(len(data)) {
		t.Fatalf("snapshot N = %d, want %d", s.N, len(data))
	}
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	return s.TrueRankError(ref)
}

func TestEstimatorErrorBound(t *testing.T) {
	for _, eps := range []float64{0.01, 0.05} {
		for name, data := range map[string][]float32{
			"uniform":  stream.Uniform(30000, 1),
			"zipf":     stream.Zipf(30000, 1.1, 500, 2),
			"sorted":   stream.Sorted(30000),
			"reversed": stream.ReverseSorted(30000),
			"gauss":    stream.Gaussian(30000, 5, 2, 3),
		} {
			e := newCPU(eps, 30000)
			e.ProcessSlice(data)
			if got := rankError(t, e, data); got > eps+1e-9 {
				t.Fatalf("%s eps=%v: rank error %v", name, eps, got)
			}
		}
	}
}

func TestEstimatorPartialWindow(t *testing.T) {
	const eps = 0.05
	data := stream.Uniform(1234, 4) // not a multiple of the window
	e := newCPU(eps, 10000)
	e.ProcessSlice(data)
	if got := rankError(t, e, data); got > eps+1e-9 {
		t.Fatalf("partial-window rank error %v", got)
	}
	// Querying must not disturb state: process more, query again.
	more := stream.Uniform(777, 5)
	e.ProcessSlice(more)
	all := append(append([]float32(nil), data...), more...)
	if got := rankError(t, e, all); got > eps+1e-9 {
		t.Fatalf("post-query rank error %v", got)
	}
}

func TestEstimatorQuick(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		const eps = 0.15
		e := newCPU(eps, int64(len(raw)), WithWindow(5))
		data := make([]float32, len(raw))
		for i, v := range raw {
			data[i] = float32(v)
			e.Process(float32(v))
		}
		ref := append([]float32(nil), data...)
		cpusort.Quicksort(ref)
		return e.Summary().TrueRankError(ref) <= eps+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorGPUBackendMatchesCPU(t *testing.T) {
	const eps = 0.02
	data := stream.Uniform(20000, 6)
	cpu := newCPU(eps, 20000)
	gpu := NewEstimator(eps, 20000, gpusort.NewSorter[float32]())
	cpu.ProcessSlice(data)
	gpu.ProcessSlice(data)
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		if cpu.Query(phi) != gpu.Query(phi) {
			t.Fatalf("backends disagree at phi=%v: %v vs %v", phi, cpu.Query(phi), gpu.Query(phi))
		}
	}
}

func TestEstimatorSpaceSublinear(t *testing.T) {
	const eps = 0.01
	e := newCPU(eps, 1_000_000)
	e.ProcessSlice(stream.Uniform(300000, 7))
	// Memory is O(L^2 / eps) entries, far below N.
	if got := e.SummaryEntries(); got > 60000 {
		t.Fatalf("summary entries = %d, not sublinear", got)
	}
	// Bucket count is logarithmic in the number of windows.
	if got := e.Buckets(); got > e.levels+2 {
		t.Fatalf("buckets = %d > levels %d", got, e.levels)
	}
}

func TestEstimatorMedianAccuracy(t *testing.T) {
	e := newCPU(0.01, 100000)
	e.ProcessSlice(stream.Sorted(100000))
	med := e.Query(0.5)
	if med < 49000 || med > 51000 {
		t.Fatalf("median = %v", med)
	}
	if min := e.Query(0); min > 1000 {
		t.Fatalf("phi=0 = %v", min)
	}
	if max := e.Query(1); max < 99000 {
		t.Fatalf("phi=1 = %v", max)
	}
}

func TestEstimatorStats(t *testing.T) {
	e := newCPU(0.01, 10000)
	e.ProcessSlice(stream.Uniform(1000, 8))
	st := e.Stats()
	if st.Windows != 10 || st.SortedValues != 1000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MergeOps == 0 || st.CompressOps == 0 {
		t.Fatalf("merge/compress not instrumented: %+v", st)
	}
	if st.Sort <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEstimatorDeepStreamBeyondLevels(t *testing.T) {
	// Exceed the provisioned capacity so the top-level parking path runs;
	// the answers must remain plausible even though the formal bound is
	// for <= capacity elements.
	const eps = 0.1
	e := newCPU(eps, 100, WithWindow(10)) // tiny capacity: levels ~ 5
	data := stream.Uniform(5000, 9)
	e.ProcessSlice(data)
	if got := rankError(t, e, data); got > 0.25 {
		t.Fatalf("overflowed-stream rank error %v unreasonably large", got)
	}
}

func TestEstimatorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewEstimator(0, 10, cpusort.QuicksortSorter[float32]{}) },
		func() { NewEstimator(1.5, 10, cpusort.QuicksortSorter[float32]{}) },
		func() { newCPU(0.1, 10).Query(0.5) }, // empty stream
		func() { newCPU(0.1, 10, WithWindow(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestWindowOptionHonored(t *testing.T) {
	e := newCPU(0.01, 1000, WithWindow(250))
	if e.WindowSize() != 250 {
		t.Fatalf("WindowSize = %d", e.WindowSize())
	}
	e.ProcessSlice(stream.Uniform(1000, 10))
	if e.Stats().Windows != 4 {
		t.Fatalf("windows = %d, want 4", e.Stats().Windows)
	}
}

func TestGKBaselineComparable(t *testing.T) {
	// The single-element GK baseline and the window-based estimator must
	// agree within their bounds on the same stream.
	const eps = 0.02
	data := stream.Uniform(20000, 11)
	e := newCPU(eps, 20000)
	gk := summary.NewGK[float32](eps)
	for _, v := range data {
		gk.Insert(v)
	}
	e.ProcessSlice(data)
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		idx := int(phi * float64(len(ref)-1))
		truth := ref[idx]
		window := e.Query(phi)
		single := gk.Query(phi)
		span := ref[min(len(ref)-1, idx+2*int(eps*float64(len(ref))))] - ref[max(0, idx-2*int(eps*float64(len(ref))))]
		if abs32(window-truth) > span+1e-6 || abs32(single-truth) > span+1e-6 {
			t.Fatalf("phi=%v: window=%v single=%v truth=%v", phi, window, single, truth)
		}
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
