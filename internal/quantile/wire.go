package quantile

import (
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
	"gpustream/internal/wire"
)

// Wire layout of a quantile Snapshot (family tag wire.FamilyQuantile):
//
//	header  wire.HeaderSize bytes
//	eps     float64
//	present uint8 (0 = empty stream, 1 = summary follows)
//	summary summary wire encoding (eps, n, count, entries)
//
// See DESIGN.md section 12.

// MarshalBinary implements encoding.BinaryMarshaler: the versioned,
// endian-stable wire encoding of the snapshot. The encoding is canonical —
// unmarshal then marshal reproduces the bytes exactly.
func (s *Snapshot[T]) MarshalBinary() ([]byte, error) {
	size := wire.HeaderSize + 8 + 1
	if s.sum != nil {
		size += summary.EncodedSize(s.sum)
	}
	b := make([]byte, 0, size)
	b = wire.AppendHeader(b, wire.FamilyQuantile, wire.TagOf[T]())
	b = wire.AppendF64(b, s.eps)
	if s.sum == nil {
		return wire.AppendU8(b, 0), nil
	}
	b = wire.AppendU8(b, 1)
	return summary.AppendBinary(b, s.sum), nil
}

// UnmarshalSnapshot decodes a quantile snapshot marshaled by any process.
// Every failure — truncation, bad header, mismatched tags, overflowed
// lengths, violated GK invariants — returns a wrapped wire sentinel error;
// UnmarshalSnapshot never panics and never allocates from an unvalidated
// length field.
func UnmarshalSnapshot[T sorter.Value](data []byte) (*Snapshot[T], error) {
	r := wire.NewReader(data)
	if err := r.Header(wire.FamilyQuantile, wire.TagOf[T]()); err != nil {
		return nil, err
	}
	s := &Snapshot[T]{}
	var err error
	if s.eps, err = r.F64(); err != nil {
		return nil, err
	}
	present, err := r.U8()
	if err != nil {
		return nil, err
	}
	switch present {
	case 0:
	case 1:
		if s.sum, err = summary.Decode[T](r); err != nil {
			return nil, err
		}
	default:
		return nil, wire.Corruptf("quantile: summary-present flag %d", present)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
