package gpusort

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gpustream/internal/gpu"
	"gpustream/internal/sorter"
	"gpustream/internal/stream"
)

func TestFloatKeyRoundTrip(t *testing.T) {
	prop := func(bits uint32) bool {
		f := math.Float32frombits(bits)
		if f != f { // NaN has no defined order; skip
			return true
		}
		return sorter.FromOrderedKey[float32](sorter.OrderedKey(f)) == f
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatKeyMonotone(t *testing.T) {
	prop := func(a, b float32) bool {
		if a != a || b != b {
			return true
		}
		if a < b {
			return sorter.OrderedKey(a) < sorter.OrderedKey(b)
		}
		if a > b {
			return sorter.OrderedKey(a) > sorter.OrderedKey(b)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestKthLargestAgainstSort(t *testing.T) {
	data := stream.Uniform(5000, 3)
	ref := append([]float32(nil), data...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] > ref[j] }) // descending
	for _, k := range []int{1, 2, 100, 2500, 4999, 5000} {
		if got := KthLargest(data, k); got != ref[k-1] {
			t.Fatalf("KthLargest(%d) = %v, want %v", k, got, ref[k-1])
		}
	}
}

func TestKthLargestDuplicatesAndNegatives(t *testing.T) {
	data := []float32{3, -1, 3, 0, -7, 3, 2, -1}
	ref := append([]float32(nil), data...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] > ref[j] })
	for k := 1; k <= len(data); k++ {
		if got := KthLargest(data, k); got != ref[k-1] {
			t.Fatalf("k=%d: got %v want %v (ref %v)", k, got, ref[k-1], ref)
		}
	}
}

func TestKthLargestQuick(t *testing.T) {
	prop := func(raw []int16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]float32, len(raw))
		for i, v := range raw {
			data[i] = float32(v)
		}
		k := int(kRaw)%len(data) + 1
		ref := append([]float32(nil), data...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] > ref[j] })
		return KthLargest(data, k) == ref[k-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKthLargestStats(t *testing.T) {
	data := stream.Uniform(4096, 4)
	_, st := KthLargestWithStats(data, 100)
	// At most 32 counting passes over 4096 texels.
	if st.Passes == 0 || st.Passes > 33 {
		t.Fatalf("Passes = %d", st.Passes)
	}
	if st.Fragments != st.Passes*4096 {
		t.Fatalf("Fragments = %d for %d passes", st.Fragments, st.Passes)
	}
	if st.BytesUp == 0 {
		t.Fatal("upload not accounted")
	}
}

func TestKthLargestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { KthLargest([]float32{1, 2}, 0) },
		func() { KthLargest([]float32{1, 2}, 3) },
		func() { Median[float32](nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float32{5, 1, 3}); got != 3 {
		t.Fatalf("Median = %v", got)
	}
	data := stream.Sorted(1001)
	if got := Median(data); got != 500 {
		t.Fatalf("Median of 0..1000 = %v", got)
	}
}

func TestCountGreaterDirect(t *testing.T) {
	tex := gpu.NewTexture[float32](2, 2)
	tex.LoadChannel(0, []float32{1, 2, 3, 4})
	tex.LoadChannel(1, []float32{5, 5, 5, 5})
	dev := gpu.NewDevice[float32](2, 2)
	dev.BindTexture(tex)
	c := dev.CountGreater(2.5)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("CountGreater = %v", c)
	}
	ge := dev.CountGreaterEqual(5)
	if ge[1] != 4 || ge[0] != 0 {
		t.Fatalf("CountGreaterEqual = %v", ge)
	}
}
