package gpusort

import (
	"gpustream/internal/cpusort"
	"gpustream/internal/gpu"
	"gpustream/internal/sorter"
)

// BitonicInstrPerFragment is the per-pixel instruction count of the prior
// GPU bitonic sort fragment program. The paper reports (Section 4.5) that
// the implementation of Purcell et al. "performs at least 53 instructions
// per pixel during each stage", versus 6-7 clock cycles for one of our blend
// operations — the source of the near-order-of-magnitude gap in Figure 3.
const BitonicInstrPerFragment = 53

// bitonicChannels is the number of texture channels the baseline packs data
// into. The hand-optimized prior-work sorter (Kipfer et al. style) packs two
// values per texel; unlike the paper's blending sorter it cannot exploit the
// full 4-wide vector blend path inside its fragment program.
const bitonicChannels = 2

// BitonicSorter is the prior-work baseline of Figure 3: a bitonic sorting
// network executed as one programmable fragment pass per stage (Purcell et
// al. [40], with Kipfer-style two-channel packing). It runs on the same GPU
// simulator as the paper's sorter, differing only in how each comparator
// stage is expressed — a fragment program instead of blending.
type BitonicSorter[T sorter.Value] struct {
	last  SortStats
	total gpu.Stats
}

// NewBitonicSorter returns the GPU bitonic baseline.
func NewBitonicSorter[T sorter.Value]() *BitonicSorter[T] { return &BitonicSorter[T]{} }

// Name implements sorter.Sorter.
func (s *BitonicSorter[T]) Name() string { return "gpu-bitonic" }

// LastStats reports the statistics of the most recent Sort call.
func (s *BitonicSorter[T]) LastStats() SortStats { return s.last }

// TotalGPU reports GPU counters accumulated across every Sort call.
func (s *BitonicSorter[T]) TotalGPU() gpu.Stats { return s.total }

// Sort implements sorter.Sorter.
func (s *BitonicSorter[T]) Sort(data []T) {
	n := len(data)
	if n <= 1 {
		s.last = SortStats{N: n}
		return
	}
	per := (n + bitonicChannels - 1) / bitonicChannels
	w, h := gpu.TextureDims(per)
	per = w * h

	tex := gpu.NewTexture[T](w, h)
	tex.Fill(sorter.MaxValue[T]())
	for i, v := range data {
		c := i / per
		p := i % per
		tex.Data[p*gpu.Channels+c] = v
	}

	dev := gpu.NewDevice[T](w, h)
	dev.Upload(tex)

	// One fragment pass per bitonic stage; the pass output is ping-ponged
	// back into the texture, as in the original multi-pass implementation.
	for k := 2; k <= per; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			stageK, stageJ := k, j
			dev.BindTexture(tex)
			dev.RunFragmentPass(0, 0, w, h, BitonicInstrPerFragment,
				func(x, y int, sample func(int, int) [4]T, out []T) {
					i := y*w + x
					p := i ^ stageJ
					self := sample(x, y)
					partner := sample(p%w, p/w)
					ascending := i&stageK == 0
					keepMin := (p > i) == ascending
					for c := 0; c < bitonicChannels; c++ {
						a, b := self[c], partner[c]
						if (a < b) == keepMin || a == b {
							out[c] = a
						} else {
							out[c] = b
						}
					}
					for c := bitonicChannels; c < gpu.Channels; c++ {
						out[c] = self[c]
					}
				})
			dev.SwapToTexture(tex)
		}
	}
	// The current state lives in tex (ping-ponged after every pass; with
	// a single texel per channel no pass runs at all).
	fb := dev.ReadTexture(tex)

	runs := make([][]T, bitonicChannels)
	for c := 0; c < bitonicChannels; c++ {
		run := fb.UnpackChannel(c)
		pad := per*(c+1) - n
		if pad < 0 {
			pad = 0
		} else if pad > per {
			pad = per
		}
		runs[c] = run[:per-pad]
	}
	merged := cpusort.Merge2(make([]T, 0, n), runs[0], runs[1])
	copy(data, merged[:n])

	s.last = SortStats{N: n, GPU: dev.Stats(), MergeCmps: int64(n), ChannelLen: per}
	s.total.Add(dev.Stats())
}

// SortAsync submits data for sorting and returns immediately with a
// completion handle — the baseline's fragment passes queue on the simulated
// device exactly like the PBSN sorter's, so the staged pipeline can overlap
// it the same way. One submission in flight per instance.
func (s *BitonicSorter[T]) SortAsync(data []T) *sorter.Handle { return sorter.Submit[T](s, data) }

var (
	_ sorter.Sorter[float32]      = (*BitonicSorter[float32])(nil)
	_ sorter.AsyncSorter[float32] = (*BitonicSorter[float32])(nil)
)
