// Package gpusort implements the paper's GPU sorting algorithm (Section 4):
// a periodic balanced sorting network executed entirely with fixed-function
// rasterization. Texture mapping expresses the comparator mapping of each
// network stage and blend-min/blend-max perform the comparisons; four
// sub-sequences packed into the RGBA channels sort in parallel and a CPU
// merge combines them. A Purcell-style GPU bitonic sorter is included as the
// prior-work baseline of Figure 3.
package gpusort

import (
	"fmt"

	"gpustream/internal/gpu"
	"gpustream/internal/sorter"
)

// Copy implements the paper's Routine 4.1: render tex into the framebuffer
// one-to-one with blending disabled.
func Copy[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T]) {
	w, h := float64(tex.W), float64(tex.H)
	quad := [4]gpu.Point{{X: 0, Y: 0}, {X: w, Y: 0}, {X: w, Y: h}, {X: 0, Y: h}}
	d.BindTexture(tex)
	d.SetBlend(gpu.BlendReplace)
	d.DrawQuad(quad, quad)
}

// ComputeMin implements the paper's Routine 4.2 generalized to a block of
// rows: for the block of blockRows*W values starting at row rowOff, each
// value in the top half of the block is compared against its 2D mirror in
// the bottom half and the minimum is kept in place. Used when the PBSN block
// size exceeds the texture width.
func ComputeMin[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T], rowOff, blockRows int) {
	d.BindTexture(tex)
	d.SetBlend(gpu.BlendMin)
	drawMirrorRows(d, tex, rowOff, blockRows, false)
}

// ComputeMax is the max-keeping counterpart of ComputeMin, covering the
// bottom half of the block.
func ComputeMax[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T], rowOff, blockRows int) {
	d.BindTexture(tex)
	d.SetBlend(gpu.BlendMax)
	drawMirrorRows(d, tex, rowOff, blockRows, true)
}

// drawMirrorRows draws the half-block quad whose texture coordinates mirror
// the opposite half in both x and y. With the block occupying rows
// [rowOff, rowOff+blockRows), value index i within the block (row-major)
// pairs with blockSize-1-i, exactly the PBSN comparator.
func drawMirrorRows[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T], rowOff, blockRows int, upper bool) {
	w := float64(tex.W)
	half := float64(blockRows) / 2
	base := float64(rowOff)
	var y0, y1 float64
	if upper {
		y0, y1 = base+half, base+float64(blockRows)
	} else {
		y0, y1 = base, base+half
	}
	v := [4]gpu.Point{{X: 0, Y: y0}, {X: w, Y: y0}, {X: w, Y: y1}, {X: 0, Y: y1}}
	// Mirror: u(x) = W - x, v(y) = 2*rowOff + blockRows - y.
	ty0 := 2*base + float64(blockRows) - y0
	ty1 := 2*base + float64(blockRows) - y1
	t := [4]gpu.Point{{X: w, Y: ty0}, {X: 0, Y: ty0}, {X: 0, Y: ty1}, {X: w, Y: ty1}}
	d.DrawQuad(v, t)
}

// ComputeRowMin keeps, for every row, the minimum of each value in columns
// [colOff, colOff+blockW/2) and its x-mirror within the width-blockW block
// at colOff. One quad of full texture height covers the block across all
// rows (paper Figure 2, left case). Used when the PBSN block size fits
// within the texture width.
func ComputeRowMin[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T], colOff, blockW int) {
	d.BindTexture(tex)
	d.SetBlend(gpu.BlendMin)
	drawMirrorCols(d, tex, colOff, blockW, false)
}

// ComputeRowMax is the max-keeping counterpart of ComputeRowMin, covering
// the right half of each block.
func ComputeRowMax[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T], colOff, blockW int) {
	d.BindTexture(tex)
	d.SetBlend(gpu.BlendMax)
	drawMirrorCols(d, tex, colOff, blockW, true)
}

// drawMirrorCols draws the half-block-wide, full-height quad whose texture
// coordinates mirror the opposite half of the column block: u(x) =
// 2*colOff + blockW - x, v(y) = y.
func drawMirrorCols[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T], colOff, blockW int, right bool) {
	h := float64(tex.H)
	base := float64(colOff)
	half := float64(blockW) / 2
	var x0, x1 float64
	if right {
		x0, x1 = base+half, base+float64(blockW)
	} else {
		x0, x1 = base, base+half
	}
	v := [4]gpu.Point{{X: x0, Y: 0}, {X: x1, Y: 0}, {X: x1, Y: h}, {X: x0, Y: h}}
	tx0 := 2*base + float64(blockW) - x0
	tx1 := 2*base + float64(blockW) - x1
	t := [4]gpu.Point{{X: tx0, Y: 0}, {X: tx1, Y: 0}, {X: tx1, Y: h}, {X: tx0, Y: h}}
	d.DrawQuad(v, t)
}

// SortStep implements the paper's Routine 4.4: one PBSN step with the given
// block size over the texture. Blocks that fit within a row are handled with
// full-height column quads (one min and one max quad per row block); larger
// blocks use the 2D mirror quads.
//
// blockSize must be a power of two in [2, W*H]; the texture dimensions must
// be powers of two.
func SortStep[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T], blockSize int) {
	n := tex.Texels()
	if blockSize < 2 || blockSize > n || blockSize&(blockSize-1) != 0 {
		panic(fmt.Sprintf("gpusort: invalid block size %d for %d texels", blockSize, n))
	}
	if blockSize <= tex.W {
		numRowBlocks := tex.W / blockSize
		for j := 0; j < numRowBlocks; j++ {
			off := j * blockSize
			ComputeRowMin(d, tex, off, blockSize)
			ComputeRowMax(d, tex, off, blockSize)
		}
		return
	}
	blockRows := blockSize / tex.W
	numBlocks := n / blockSize
	for j := 0; j < numBlocks; j++ {
		off := j * blockRows
		ComputeMin(d, tex, off, blockRows)
		ComputeMax(d, tex, off, blockRows)
	}
}

// SortStepPerRow is the unoptimized variant of SortStep used by the
// row-block ablation: when a block fits within a row it issues one min and
// one max quad per (row, block) pair instead of one full-height quad per
// column block (the optimization of the paper's Figure 2). The shaded
// fragments are identical; only the draw-call count differs, which is the
// per-quad submission overhead the optimization removes.
func SortStepPerRow[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T], blockSize int) {
	n := tex.Texels()
	if blockSize < 2 || blockSize > n || blockSize&(blockSize-1) != 0 {
		panic(fmt.Sprintf("gpusort: invalid block size %d for %d texels", blockSize, n))
	}
	if blockSize > tex.W {
		SortStep(d, tex, blockSize)
		return
	}
	w := float64(tex.W)
	_ = w
	numRowBlocks := tex.W / blockSize
	for y := 0; y < tex.H; y++ {
		for j := 0; j < numRowBlocks; j++ {
			base := float64(j * blockSize)
			half := float64(blockSize) / 2
			y0, y1 := float64(y), float64(y+1)
			for side := 0; side < 2; side++ {
				var x0, x1 float64
				if side == 0 {
					d.BindTexture(tex)
					d.SetBlend(gpu.BlendMin)
					x0, x1 = base, base+half
				} else {
					d.BindTexture(tex)
					d.SetBlend(gpu.BlendMax)
					x0, x1 = base+half, base+float64(blockSize)
				}
				tx0 := 2*base + float64(blockSize) - x0
				tx1 := 2*base + float64(blockSize) - x1
				v := [4]gpu.Point{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}}
				t := [4]gpu.Point{{X: tx0, Y: y0}, {X: tx1, Y: y0}, {X: tx1, Y: y1}, {X: tx0, Y: y1}}
				d.DrawQuad(v, t)
			}
		}
	}
}

// PBSN implements the paper's Routine 4.3: run log(n) stages of log(n)
// SortSteps with block sizes n, n/2, ..., 2, ping-ponging the framebuffer
// back into the texture after every step. On return each channel of tex
// (and the framebuffer) is sorted ascending in texel (row-major) order.
//
// The caller is responsible for Upload/readback accounting; PBSN itself
// performs only GPU-side work.
func PBSN[T sorter.Value](d *gpu.Device[T], tex *gpu.Texture[T]) {
	n := tex.Texels()
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("gpusort: PBSN requires power-of-two texel count, got %d", n))
	}
	Copy(d, tex)
	if n == 1 {
		return
	}
	L := 0
	for 1<<L < n {
		L++
	}
	for stage := 0; stage < L; stage++ {
		for b := L; b >= 1; b-- {
			SortStep(d, tex, 1<<b)
			d.SwapToTexture(tex)
		}
	}
}
