package gpusort

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpu"
	"gpustream/internal/half"
	"gpustream/internal/sorter"
	"gpustream/internal/sortnet"
	"gpustream/internal/stream"
)

// loadAllChannels loads data into every channel of a fresh texture so the
// four channels sort the same sequence, simplifying verification.
func loadAllChannels(data []float32, w, h int) *gpu.Texture[float32] {
	tex := gpu.NewTexture[float32](w, h)
	for c := 0; c < gpu.Channels; c++ {
		tex.LoadChannel(c, data)
	}
	return tex
}

func TestSortStepMatchesNetworkStage(t *testing.T) {
	// One GPU SortStep must apply exactly the comparator stage
	// sortnet.PBSNStep produces, for every block size, in both the
	// row-block and multi-row regimes.
	const W, H = 8, 4 // 32 texels
	n := W * H
	base := stream.Uniform(n, 42)
	for block := 2; block <= n; block *= 2 {
		tex := loadAllChannels(base, W, H)
		dev := gpu.NewDevice[float32](W, H)
		Copy(dev, tex)
		SortStep(dev, tex, block)

		want := append([]float32(nil), base...)
		for _, c := range sortnet.PBSNStep(n, block) {
			if want[c.I] > want[c.J] {
				want[c.I], want[c.J] = want[c.J], want[c.I]
			}
		}
		got := dev.Framebuffer().UnpackChannel(0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("block %d texel %d: gpu=%v net=%v", block, i, got[i], want[i])
			}
		}
		// All four channels must have been processed identically.
		for c := 1; c < gpu.Channels; c++ {
			chData := dev.Framebuffer().UnpackChannel(c)
			for i := range want {
				if chData[i] != want[i] {
					t.Fatalf("block %d channel %d diverged at %d", block, c, i)
				}
			}
		}
	}
}

func TestPBSNSortsAllChannels(t *testing.T) {
	shapes := []struct{ w, h int }{{1, 1}, {2, 1}, {2, 2}, {8, 4}, {16, 16}, {64, 32}}
	for _, sh := range shapes {
		n := sh.w * sh.h
		data := stream.Uniform(n, uint64(n))
		tex := loadAllChannels(data, sh.w, sh.h)
		dev := gpu.NewDevice[float32](sh.w, sh.h)
		PBSN(dev, tex)
		want := append([]float32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for c := 0; c < gpu.Channels; c++ {
			got := dev.Framebuffer().UnpackChannel(c)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%dx%d channel %d index %d: got %v want %v",
						sh.w, sh.h, c, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPBSNDifferentDataPerChannel(t *testing.T) {
	const W, H = 8, 8
	n := W * H
	tex := gpu.NewTexture[float32](W, H)
	var wants [gpu.Channels][]float32
	for c := 0; c < gpu.Channels; c++ {
		data := stream.Uniform(n, uint64(c+1))
		tex.LoadChannel(c, data)
		w := append([]float32(nil), data...)
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
		wants[c] = w
	}
	dev := gpu.NewDevice[float32](W, H)
	PBSN(dev, tex)
	for c := 0; c < gpu.Channels; c++ {
		got := dev.Framebuffer().UnpackChannel(c)
		for i := range wants[c] {
			if got[i] != wants[c][i] {
				t.Fatalf("channel %d not sorted independently (index %d)", c, i)
			}
		}
	}
}

func TestPBSNRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 3-texel texture")
		}
	}()
	tex := gpu.NewTexture[float32](3, 1)
	PBSN(gpu.NewDevice[float32](3, 1), tex)
}

func TestSortStepRejectsBadBlock(t *testing.T) {
	tex := gpu.NewTexture[float32](4, 4)
	dev := gpu.NewDevice[float32](4, 4)
	for _, b := range []int{0, 1, 3, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("block %d accepted", b)
				}
			}()
			SortStep(dev, tex, b)
		}()
	}
}

func checkSorterQuick(t *testing.T, s interface {
	Sort([]float32)
	Name() string
}) {
	t.Helper()
	prop := func(raw []int32) bool {
		data := make([]float32, len(raw))
		for i, v := range raw {
			data[i] = float32(v)
		}
		want := append([]float32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		s.Sort(data)
		for i := range want {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
}

func TestSorterQuick(t *testing.T)        { checkSorterQuick(t, NewSorter[float32]()) }
func TestSorter1ChQuick(t *testing.T)     { checkSorterQuick(t, &Sorter[float32]{ChannelsUsed: 1}) }
func TestBitonicSorterQuick(t *testing.T) { checkSorterQuick(t, NewBitonicSorter[float32]()) }

func TestSorterSizesSweep(t *testing.T) {
	s := NewSorter[float32]()
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 1000, 4096, 10000} {
		data := stream.Uniform(n, uint64(n)+7)
		want := append([]float32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		s.Sort(data)
		for i := range want {
			if data[i] != want[i] {
				t.Fatalf("n=%d mismatch at %d", n, i)
			}
		}
	}
}

func TestSorterHandlesInfAndDuplicates(t *testing.T) {
	inf := float32(math.Inf(1))
	data := []float32{inf, 1, 1, -1, inf, 0, -inf, 1}
	want := append([]float32(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	s := NewSorter[float32]()
	s.Sort(data)
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("got %v want %v", data, want)
		}
	}
}

func TestSorterStats(t *testing.T) {
	s := NewSorter[float32]()
	data := stream.Uniform(4096, 3)
	s.Sort(data)
	st := s.LastStats()
	if st.N != 4096 {
		t.Fatalf("N = %d", st.N)
	}
	// 4096 values over 4 channels -> 1024 texels -> 32x32.
	if st.ChannelLen != 1024 {
		t.Fatalf("ChannelLen = %d", st.ChannelLen)
	}
	// PBSN over 1024 texels: log^2(1024) = 100 steps, each step shades
	// every texel exactly once (half by the min quads, half by the max).
	wantFrag := int64(1024 * 100)
	// Plus the initial Copy pass of 1024 fragments.
	if st.GPU.Fragments != wantFrag+1024 {
		t.Fatalf("Fragments = %d, want %d", st.GPU.Fragments, wantFrag+1024)
	}
	if st.GPU.BlendOps != wantFrag {
		t.Fatalf("BlendOps = %d, want %d", st.GPU.BlendOps, wantFrag)
	}
	wantBytes := int64(1024 * 16)
	if st.GPU.BytesUp != wantBytes || st.GPU.BytesDown != wantBytes {
		t.Fatalf("bus bytes = %d/%d, want %d", st.GPU.BytesUp, st.GPU.BytesDown, wantBytes)
	}
	if st.MergeCmps == 0 {
		t.Fatal("merge comparisons not recorded")
	}
	// Cumulative counter grows across sorts.
	before := s.TotalGPU().Fragments
	s.Sort(stream.Uniform(1024, 4))
	if s.TotalGPU().Fragments <= before {
		t.Fatal("TotalGPU did not accumulate")
	}
}

func TestBitonicStats(t *testing.T) {
	s := NewBitonicSorter[float32]()
	data := stream.Uniform(2048, 5)
	s.Sort(data)
	if !cpusort.IsSorted(data) {
		t.Fatal("bitonic output not sorted")
	}
	st := s.LastStats()
	// 2048 values over 2 channels -> 1024 texels; bitonic over 1024 has
	// 10*11/2 = 55 stages, each a full-texture pass.
	if st.GPU.Passes != 55 {
		t.Fatalf("Passes = %d, want 55", st.GPU.Passes)
	}
	if st.GPU.Fragments != 55*1024 {
		t.Fatalf("Fragments = %d", st.GPU.Fragments)
	}
	if st.GPU.ProgramInstr != 55*1024*BitonicInstrPerFragment {
		t.Fatalf("ProgramInstr = %d", st.GPU.ProgramInstr)
	}
}

// TestPBSNAgainstQuicksortLarge cross-checks the full GPU pipeline against
// the CPU baseline on a larger input.
func TestPBSNAgainstQuicksortLarge(t *testing.T) {
	data := stream.Zipf(100000, 1.1, 5000, 17)
	want := append([]float32(nil), data...)
	cpusort.Quicksort(want)
	s := NewSorter[float32]()
	s.Sort(data)
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, data[i], want[i])
		}
	}
}

func TestSortStepPerRowMatchesOptimized(t *testing.T) {
	const W, H = 8, 4
	base := stream.Uniform(W*H, 77)
	for _, block := range []int{2, 4, 8, 16, 32} {
		texA := loadAllChannels(base, W, H)
		texB := loadAllChannels(base, W, H)
		devA := gpu.NewDevice[float32](W, H)
		devB := gpu.NewDevice[float32](W, H)
		Copy(devA, texA)
		Copy(devB, texB)
		SortStep(devA, texA, block)
		SortStepPerRow(devB, texB, block)
		fa, fb := devA.Framebuffer(), devB.Framebuffer()
		for i := range fa.Data {
			if fa.Data[i] != fb.Data[i] {
				t.Fatalf("block %d: per-row variant diverged at %d", block, i)
			}
		}
		if block <= W && devB.Stats().DrawCalls <= devA.Stats().DrawCalls {
			t.Fatalf("block %d: per-row variant should issue more draw calls (%d vs %d)",
				block, devB.Stats().DrawCalls, devA.Stats().DrawCalls)
		}
	}
}

func TestSortBatchIndependentSequences(t *testing.T) {
	s := NewSorter[float32]()
	batch := [][]float32{
		stream.Uniform(1000, 1),
		stream.Zipf(700, 1.2, 50, 2),
		stream.ReverseSorted(1024),
		{5, 1, 3},
	}
	wants := make([][]float32, len(batch))
	for i, seq := range batch {
		w := append([]float32(nil), seq...)
		cpusort.Quicksort(w)
		wants[i] = w
	}
	s.SortBatch(batch)
	for i, want := range wants {
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("sequence %d mismatch at %d", i, j)
			}
		}
	}
	if st := s.LastStats(); st.N != 1000+700+1024+3 {
		t.Fatalf("batch N = %d", st.N)
	}
}

func TestSortBatchAmortizesOverhead(t *testing.T) {
	// Sorting four windows in one batch must cost one upload/readback and
	// exactly the fragment work of one padded PBSN run — a quarter of four
	// separate invocations at equal padded size.
	const n = 4096
	windows := make([][]float32, 4)
	for i := range windows {
		windows[i] = stream.Uniform(n, uint64(i+10))
	}
	batched := NewSorter[float32]()
	batched.SortBatch(windows)
	bst := batched.LastStats().GPU

	single := NewSorter[float32]()
	var sst gpu.Stats
	for i := 0; i < 4; i++ {
		single.Sort(stream.Uniform(n, uint64(i+20)))
		sst.Add(single.LastStats().GPU)
	}
	if bst.Transfers != 2 || sst.Transfers != 8 {
		t.Fatalf("transfers: batch %d, singles %d", bst.Transfers, sst.Transfers)
	}
	// Singles pack each 4096-value window across 4 channels (1024 texels);
	// the batch packs one window per channel (4096 texels): same total
	// values but the batch pays log^2 of a 4x larger texture, traded
	// against 4x fewer invocations (setup) and transfers.
	if bst.Fragments >= sst.Fragments*2 {
		t.Fatalf("batch fragments %d unreasonably high vs singles %d", bst.Fragments, sst.Fragments)
	}
}

func TestSortBatchEdgeCases(t *testing.T) {
	s := NewSorter[float32]()
	s.SortBatch(nil) // no-op
	one := [][]float32{{2, 1}}
	s.SortBatch(one)
	if one[0][0] != 1 || one[0][1] != 2 {
		t.Fatalf("single-sequence batch = %v", one[0])
	}
	empty := [][]float32{{}, {1}}
	s.SortBatch(empty)
	if len(empty[0]) != 0 || empty[1][0] != 1 {
		t.Fatal("empty sequence mishandled")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized batch accepted")
		}
	}()
	s.SortBatch(make([][]float32, 5))
}

func TestSortBatchQuick(t *testing.T) {
	prop := func(a, b, c, d []int16) bool {
		raws := [][]int16{a, b, c, d}
		batch := make([][]float32, 4)
		wants := make([][]float32, 4)
		for i, raw := range raws {
			batch[i] = make([]float32, len(raw))
			for j, v := range raw {
				batch[i][j] = float32(v)
			}
			wants[i] = append([]float32(nil), batch[i]...)
			cpusort.Quicksort(wants[i])
		}
		s := NewSorter[float32]()
		s.SortBatch(batch)
		for i := range wants {
			for j := range wants[i] {
				if batch[i][j] != wants[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSorterHalfTargets(t *testing.T) {
	data := stream.Uniform(4096, 99)
	s := &Sorter[float32]{ChannelsUsed: 4, HalfTargets: true}
	got := append([]float32(nil), data...)
	s.Sort(got)
	// Output is the sorted sequence of half-quantized inputs.
	want := make([]float32, len(data))
	for i, v := range data {
		want[i] = half.FromFloat32(v).ToFloat32()
	}
	cpusort.Quicksort(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("half-target sort mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// pbsnStatsFor sorts the same rank permutation mapped monotonically into T
// and returns the primitive-op counters. Using ranks (exact in every Value
// instantiation at these sizes) makes the comparison sequence identical, so
// even the data-dependent CPU merge comparisons must agree across types.
func pbsnStatsFor[T sorter.Value](perm []int) SortStats {
	data := make([]T, len(perm))
	for i, r := range perm {
		data[i] = T(r)
	}
	s := NewSorter[T]()
	s.Sort(data)
	return s.LastStats()
}

func bitonicStatsFor[T sorter.Value](perm []int) SortStats {
	data := make([]T, len(perm))
	for i, r := range perm {
		data[i] = T(r)
	}
	s := NewBitonicSorter[T]()
	s.Sort(data)
	return s.LastStats()
}

// TestSortStatsTypeInvariant pins the acceptance criterion that for a fixed
// input length the GPU primitive-op counts — draw calls, fragments, blend
// ops, texel fetches, bus bytes — are identical whichever Value type is
// sorted: the simulated hardware always works on 32-bit texels, so the cost
// model (and therefore modeled GPU time) is shape-dependent, not
// value-dependent.
func TestSortStatsTypeInvariant(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000, 4096} {
		r := stream.NewRNG(uint64(n) + 99)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		f32 := pbsnStatsFor[float32](perm)
		if got := pbsnStatsFor[float64](perm); got != f32 {
			t.Fatalf("n=%d: PBSN float64 stats %+v != float32 %+v", n, got, f32)
		}
		if got := pbsnStatsFor[uint64](perm); got != f32 {
			t.Fatalf("n=%d: PBSN uint64 stats %+v != float32 %+v", n, got, f32)
		}
		if got := pbsnStatsFor[int32](perm); got != f32 {
			t.Fatalf("n=%d: PBSN int32 stats %+v != float32 %+v", n, got, f32)
		}
		b32 := bitonicStatsFor[float32](perm)
		if got := bitonicStatsFor[uint64](perm); got != b32 {
			t.Fatalf("n=%d: bitonic uint64 stats %+v != float32 %+v", n, got, b32)
		}
		if got := bitonicStatsFor[float64](perm); got != b32 {
			t.Fatalf("n=%d: bitonic float64 stats %+v != float32 %+v", n, got, b32)
		}
	}
}
