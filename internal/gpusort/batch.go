package gpusort

import (
	"fmt"

	"gpustream/internal/gpu"
	"gpustream/internal/sorter"
)

// SortBatch sorts up to four independent sequences in a single PBSN
// invocation, one sequence per RGBA channel — the paper's Section 4.1
// streaming configuration: "we buffer four windows of data values and
// represent each of the windows in a color component of the 2D texture.
// Each window of data value is sorted in parallel." Upload, setup and the
// log^2 rasterization passes are paid once for all four windows, so a
// window-based pipeline amortizes the GPU's fixed overhead 4x compared to
// sorting windows one at a time.
//
// Each slice is sorted ascending in place; no cross-slice merge happens.
// It panics if batch holds more than four sequences.
func (s *Sorter[T]) SortBatch(batch [][]T) {
	if len(batch) > gpu.Channels {
		panic(fmt.Sprintf("gpusort: batch of %d sequences exceeds %d channels", len(batch), gpu.Channels))
	}
	maxLen := 0
	for _, seq := range batch {
		if len(seq) > maxLen {
			maxLen = len(seq)
		}
	}
	if maxLen <= 1 {
		s.last = SortStats{N: maxLen * len(batch)}
		return
	}
	w, h := gpu.TextureDims(maxLen)
	per := w * h

	tex := gpu.NewTexture[T](w, h)
	tex.Fill(sorter.MaxValue[T]())
	total := 0
	for c, seq := range batch {
		tex.LoadChannel(c, seq)
		total += len(seq)
	}

	dev := gpu.NewDevice[T](w, h)
	dev.Upload(tex)
	PBSN(dev, tex)
	fb := dev.ReadFramebuffer()

	for c, seq := range batch {
		if len(seq) == 0 {
			continue
		}
		run := fb.UnpackChannel(c)
		// Real maximum values sort against the padding indistinguishably;
		// keeping the first len(seq) entries preserves the multiset.
		copy(seq, run[:len(seq)])
	}
	s.last = SortStats{N: total, GPU: dev.Stats(), ChannelLen: per}
	s.total.Add(dev.Stats())
}
