package gpusort

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// bytesToFloats decodes an arbitrary byte string into float32s, mapping NaN
// payloads to a large finite value (the sorter's comparisons, like the
// GPU's, are only defined for ordered values).
func bytesToFloats(raw []byte) []float32 {
	out := make([]float32, 0, len(raw)/4)
	for i := 0; i+4 <= len(raw); i += 4 {
		f := math.Float32frombits(binary.LittleEndian.Uint32(raw[i:]))
		if f != f {
			f = math.MaxFloat32
		}
		out = append(out, f)
	}
	return out
}

func FuzzPBSNSorter(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0xFF, 0xFF, 0x7F, 0x7F, 0, 0, 0x80, 0xFF}) // MaxFloat32, -Inf
	f.Fuzz(func(t *testing.T, raw []byte) {
		data := bytesToFloats(raw)
		want := append([]float32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		s := NewSorter[float32]()
		s.Sort(data)
		for i := range want {
			if data[i] != want[i] {
				t.Fatalf("mismatch at %d: %v vs %v", i, data[i], want[i])
			}
		}
	})
}

func FuzzKthLargest(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw uint8) {
		data := bytesToFloats(raw)
		if len(data) == 0 {
			return
		}
		k := int(kRaw)%len(data) + 1
		ref := append([]float32(nil), data...)
		sort.Slice(ref, func(i, j int) bool { return ref[i] > ref[j] })
		if got := KthLargest(data, k); got != ref[k-1] {
			t.Fatalf("KthLargest(%d) = %v, want %v", k, got, ref[k-1])
		}
	})
}
