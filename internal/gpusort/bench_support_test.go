package gpusort

import "gpustream/internal/cpusort"

func mergeBench(runs [][]float32) []float32 {
	return cpusort.Merge4(runs[0], runs[1], runs[2], runs[3])
}
