package gpusort

import (
	"fmt"
	"testing"

	"gpustream/internal/stream"
)

func BenchmarkPBSNSorter(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := stream.Uniform(n, uint64(n))
			s := NewSorter[float32]()
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				s.Sort(buf)
			}
		})
	}
}

func BenchmarkBitonicSorter(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := stream.Uniform(n, uint64(n))
			s := NewBitonicSorter[float32]()
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				s.Sort(buf)
			}
		})
	}
}

func BenchmarkMerge4(b *testing.B) {
	n := 1 << 16
	runs := make([][]float32, 4)
	for c := range runs {
		runs[c] = stream.Sorted(n / 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Sorter[float32]{}
		_ = s
		_ = mergeBench(runs)
	}
}
