package gpusort

import (
	"gpustream/internal/cpusort"
	"gpustream/internal/gpu"
	"gpustream/internal/sorter"
)

// SortStats describes one completed sort: the exact GPU operation counters
// and the CPU-side merge work. The perfmodel package converts these to
// modeled GeForce-6800 / Pentium-IV time. The counters depend only on the
// input length — two sorts of equal n produce identical SortStats whatever
// the element type.
type SortStats struct {
	N          int       // values sorted
	GPU        gpu.Stats // exact simulator counters (compute + bus)
	MergeCmps  int64     // CPU comparisons in the k-way channel merge
	ChannelLen int       // texels per channel (padded length)
}

// Sorter is the paper's GPU sorting algorithm packaged behind the
// sorter.Sorter interface: values are padded with the element type's maximum
// (+Inf for floats) to a power-of-two per-channel length, packed across the
// four RGBA channels of a 2D texture, uploaded, sorted with PBSN, read back,
// and merged on the CPU.
type Sorter[T sorter.Value] struct {
	// ChannelsUsed is how many texture channels carry data (1..4).
	// 4 is the paper's configuration; 1 is the ablation without
	// vector-parallel channel packing.
	ChannelsUsed int

	// HalfTargets renders into 16-bit offscreen buffers, the paper's
	// Section 4.5 configuration: values coarsen to binary16 precision but
	// ordering is preserved (quantization is monotone). The mode only
	// affects float32 instantiations; see gpu.SetHalfPrecisionTargets.
	HalfTargets bool

	last  SortStats
	total gpu.Stats
}

// NewSorter returns the paper-configured GPU sorter (4 channels).
func NewSorter[T sorter.Value]() *Sorter[T] { return &Sorter[T]{ChannelsUsed: 4} }

// Name implements sorter.Sorter.
func (s *Sorter[T]) Name() string {
	if s.ChannelsUsed == 1 {
		return "gpu-pbsn-1ch"
	}
	return "gpu-pbsn"
}

// LastStats reports the statistics of the most recent Sort call.
func (s *Sorter[T]) LastStats() SortStats { return s.last }

// TotalGPU reports GPU counters accumulated across every Sort call.
func (s *Sorter[T]) TotalGPU() gpu.Stats { return s.total }

// Sort implements sorter.Sorter.
func (s *Sorter[T]) Sort(data []T) {
	n := len(data)
	if n <= 1 {
		s.last = SortStats{N: n}
		return
	}
	ch := s.ChannelsUsed
	if ch < 1 || ch > gpu.Channels {
		ch = gpu.Channels
	}
	per := (n + ch - 1) / ch
	w, h := gpu.TextureDims(per)
	per = w * h

	pad := sorter.MaxValue[T]()
	tex := gpu.NewTexture[T](w, h)
	tex.Fill(pad)
	for i, v := range data {
		c := i / per
		p := i % per
		tex.Data[p*gpu.Channels+c] = v
	}

	dev := gpu.NewDevice[T](w, h)
	dev.SetHalfPrecisionTargets(s.HalfTargets)
	dev.Upload(tex)
	PBSN(dev, tex)
	fb := dev.ReadFramebuffer()

	runs := make([][]T, ch)
	for c := 0; c < ch; c++ {
		run := fb.UnpackChannel(c)
		// Strip padding from the tail; real maximum values in the data are
		// preserved because only the pad count is removed.
		padN := per*(c+1) - n
		if padN < 0 {
			padN = 0
		} else if padN > per {
			padN = per
		}
		runs[c] = run[:per-padN]
	}

	var merged []T
	var mergeCmps int64
	switch ch {
	case 1:
		merged = runs[0]
	case 4:
		merged = cpusort.Merge4(runs[0], runs[1], runs[2], runs[3])
		mergeCmps = int64(2 * n) // two pairwise merge levels, <= n cmps each
	default:
		merged = cpusort.KWayMerge(runs)
		mergeCmps = int64(n) * int64(log2ceil(ch))
	}
	copy(data, merged[:n])

	s.last = SortStats{N: n, GPU: dev.Stats(), MergeCmps: mergeCmps, ChannelLen: per}
	s.total.Add(dev.Stats())
}

// SortAsync submits data for sorting and returns immediately with a
// completion handle, modeling the paper's non-blocking GPU submission: the
// render passes are queued on the (simulated) device and the CPU is free to
// merge and compress the previous window until the framebuffer readback —
// here, Handle.Wait — synchronizes. At most one submission may be in flight
// per sorter instance (the simulator keeps per-sort state, as the real
// context would).
func (s *Sorter[T]) SortAsync(data []T) *sorter.Handle { return sorter.Submit[T](s, data) }

func log2ceil(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

var (
	_ sorter.Sorter[float32]      = (*Sorter[float32])(nil)
	_ sorter.Sorter[uint64]       = (*Sorter[uint64])(nil)
	_ sorter.AsyncSorter[float32] = (*Sorter[float32])(nil)
)
