package gpusort

import (
	"fmt"
	"math"

	"gpustream/internal/gpu"
)

// KthLargest returns the k-th largest value of data (k = 1 is the maximum)
// using the occlusion-query selection algorithm of the authors' companion
// database-operations work: binary search over the float32 key space, one
// GPU counting pass per probe. It runs in at most 32 passes of n fragments
// each — O(n log |domain|) fragment work with no sorting — and is the
// primitive behind the paper's claim that its machinery extends to k-th
// largest queries.
//
// It panics unless 1 <= k <= len(data).
func KthLargest(data []float32, k int) float32 {
	v, _ := KthLargestWithStats(data, k)
	return v
}

// KthLargestWithStats is KthLargest, also returning the GPU counters of the
// selection for the performance model.
func KthLargestWithStats(data []float32, k int) (float32, gpu.Stats) {
	n := len(data)
	if k < 1 || k > n {
		panic(fmt.Sprintf("gpusort: k=%d out of [1, %d]", k, n))
	}
	// Pack into a single channel; the counting pass tests all four
	// channels at once, so the other three are parked at -Inf where they
	// can never outrank real data.
	w, h := gpu.TextureDims(n)
	tex := gpu.NewTexture(w, h)
	tex.Fill(float32(math.Inf(-1)))
	tex.LoadChannel(0, data)
	dev := gpu.NewDevice(w, h)
	dev.Upload(tex)
	dev.BindTexture(tex)

	// Binary search on the order-preserving uint32 key space: find the
	// smallest key u whose value has fewer than k strictly-greater
	// elements; that value is the k-th largest.
	count := func(v float32) int64 { return dev.CountGreater(v)[0] }
	lo, hi := uint32(0), uint32(math.MaxUint32)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if count(keyToFloat(mid)) <= int64(k-1) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return keyToFloat(lo), dev.Stats()
}

// floatToKey maps float32 to uint32 preserving order.
func floatToKey(f float32) uint32 {
	b := math.Float32bits(f)
	if b&0x80000000 != 0 {
		return ^b
	}
	return b | 0x80000000
}

// keyToFloat inverts floatToKey.
func keyToFloat(u uint32) float32 {
	if u&0x80000000 != 0 {
		return math.Float32frombits(u &^ 0x80000000)
	}
	return math.Float32frombits(^u)
}

// Median returns the n/2-th largest element via KthLargest.
func Median(data []float32) float32 {
	if len(data) == 0 {
		panic("gpusort: Median of empty data")
	}
	return KthLargest(data, (len(data)+1)/2)
}
