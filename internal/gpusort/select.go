package gpusort

import (
	"fmt"

	"gpustream/internal/gpu"
	"gpustream/internal/sorter"
)

// KthLargest returns the k-th largest value of data (k = 1 is the maximum)
// using the occlusion-query selection algorithm of the authors' companion
// database-operations work: binary search over the element type's
// order-preserving key space, one GPU counting pass per probe. It runs in at
// most KeyBits passes of n fragments each — O(n log |domain|) fragment work
// with no sorting — and is the primitive behind the paper's claim that its
// machinery extends to k-th largest queries.
//
// It panics unless 1 <= k <= len(data).
func KthLargest[T sorter.Value](data []T, k int) T {
	v, _ := KthLargestWithStats(data, k)
	return v
}

// KthLargestWithStats is KthLargest, also returning the GPU counters of the
// selection for the performance model.
func KthLargestWithStats[T sorter.Value](data []T, k int) (T, gpu.Stats) {
	n := len(data)
	if k < 1 || k > n {
		panic(fmt.Sprintf("gpusort: k=%d out of [1, %d]", k, n))
	}
	// Pack into a single channel; the counting pass tests all four
	// channels at once, so the other three are parked at the type's
	// minimum where they can never outrank real data.
	w, h := gpu.TextureDims(n)
	tex := gpu.NewTexture[T](w, h)
	tex.Fill(sorter.MinValue[T]())
	tex.LoadChannel(0, data)
	dev := gpu.NewDevice[T](w, h)
	dev.Upload(tex)
	dev.BindTexture(tex)

	// Binary search on the order-preserving key space: find the smallest
	// key u whose value has fewer than k strictly-greater elements; that
	// value is the k-th largest. 32-bit types search a 32-bit key space,
	// 64-bit types a 64-bit one, so probe counts differ only by key width,
	// never by value distribution.
	count := func(v T) int64 { return dev.CountGreater(v)[0] }
	var lo, hi uint64
	if sorter.KeyBits[T]() == 32 {
		hi = 1<<32 - 1
	} else {
		hi = 1<<64 - 1
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if count(sorter.FromOrderedKey[T](mid)) <= int64(k-1) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return sorter.FromOrderedKey[T](lo), dev.Stats()
}

// Median returns the n/2-th largest element via KthLargest.
func Median[T sorter.Value](data []T) T {
	if len(data) == 0 {
		panic("gpusort: Median of empty data")
	}
	return KthLargest(data, (len(data)+1)/2)
}
