package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

// refDraw is a naive reference rasterizer: per-pixel bilinear interpolation
// of texture coordinates at pixel centers, nearest sampling, channel-wise
// blending. The Device[float32]'s optimized span paths must match it exactly.
func refDraw(fb, tex *Texture[float32], v, t [4]Point, blend BlendFunc) {
	x0, y0 := int(v[0].X), int(v[0].Y)
	x1, y1 := int(v[1].X), int(v[3].Y)
	for y := maxInt(y0, 0); y < y1 && y < fb.H; y++ {
		for x := maxInt(x0, 0); x < x1 && x < fb.W; x++ {
			s := (float64(x) + 0.5 - v[0].X) / (v[1].X - v[0].X)
			r := (float64(y) + 0.5 - v[0].Y) / (v[3].Y - v[0].Y)
			u := (1-s)*(1-r)*t[0].X + s*(1-r)*t[1].X + s*r*t[2].X + (1-s)*r*t[3].X
			w := (1-s)*(1-r)*t[0].Y + s*(1-r)*t[1].Y + s*r*t[2].Y + (1-s)*r*t[3].Y
			tx := clampInt(int(math.Floor(u)), 0, tex.W-1)
			ty := clampInt(int(math.Floor(w)), 0, tex.H-1)
			for c := 0; c < Channels; c++ {
				src := tex.At(tx, ty, c)
				dst := fb.At(x, y, c)
				switch blend {
				case BlendMin:
					if src < dst {
						fb.Set(x, y, c, src)
					}
				case BlendMax:
					if src > dst {
						fb.Set(x, y, c, src)
					}
				default:
					fb.Set(x, y, c, src)
				}
			}
		}
	}
}

func randomTexture(w, h int, seed int64) *Texture[float32] {
	tex := NewTexture[float32](w, h)
	s := uint64(seed)*2654435761 + 1
	for i := range tex.Data {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		tex.Data[i] = float32(s%1000) / 10
	}
	return tex
}

// copyQuad implements the paper's Routine 4.1 (Copy).
func copyQuad(d *Device[float32], tex *Texture[float32]) {
	w, h := float64(tex.W), float64(tex.H)
	v := [4]Point{{0, 0}, {w, 0}, {w, h}, {0, h}}
	d.BindTexture(tex)
	d.SetBlend(BlendReplace)
	d.DrawQuad(v, v)
}

func TestCopyRoutine(t *testing.T) {
	tex := randomTexture(8, 4, 1)
	d := NewDevice[float32](8, 4)
	copyQuad(d, tex)
	for i := range tex.Data {
		if d.fb.Data[i] != tex.Data[i] {
			t.Fatalf("copy mismatch at %d: fb=%v tex=%v", i, d.fb.Data[i], tex.Data[i])
		}
	}
}

// TestComputeMinRoutine reproduces the paper's Routine 4.2 example: compare
// the i-th value against the (n-1-i)-th and store the minimum in location i.
func TestComputeMinRoutine(t *testing.T) {
	const W, H = 4, 4
	tex := randomTexture(W, H, 2)
	d := NewDevice[float32](W, H)
	copyQuad(d, tex)

	d.SetBlend(BlendMin)
	v := [4]Point{{0, 0}, {W, 0}, {W, H / 2}, {0, H / 2}}
	tc := [4]Point{{W, H}, {0, H}, {0, H / 2}, {W, H / 2}}
	d.DrawQuad(v, tc)

	n := W * H
	for y := 0; y < H/2; y++ {
		for x := 0; x < W; x++ {
			i := y*W + x
			j := n - 1 - i
			jx, jy := j%W, j/W
			for c := 0; c < Channels; c++ {
				want := tex.At(x, y, c)
				if m := tex.At(jx, jy, c); m < want {
					want = m
				}
				if got := d.fb.At(x, y, c); got != want {
					t.Fatalf("min at texel %d ch %d = %v, want %v", i, c, got, want)
				}
			}
		}
	}
}

func TestDrawQuadMatchesReferenceOnPaperMappings(t *testing.T) {
	// Exercise each mapping shape the sorter uses: identity copy, x-mirror
	// within column blocks, and full xy-mirror of the lower half, across a
	// few texture shapes, against the naive reference rasterizer.
	shapes := []struct{ w, h int }{{4, 4}, {8, 2}, {16, 8}, {2, 16}}
	for _, sh := range shapes {
		for _, blend := range []BlendFunc{BlendReplace, BlendMin, BlendMax} {
			tex := randomTexture(sh.w, sh.h, int64(sh.w*31+sh.h))
			d := NewDevice[float32](sh.w, sh.h)
			copyQuad(d, tex)
			ref := d.fb.Clone()

			W, H := float64(sh.w), float64(sh.h)
			quads := [][2][4]Point{
				// identity
				{{{0, 0}, {W, 0}, {W, H}, {0, H}}, {{0, 0}, {W, 0}, {W, H}, {0, H}}},
				// x-mirror of right half onto left half
				{{{0, 0}, {W / 2, 0}, {W / 2, H}, {0, H}}, {{W, 0}, {W / 2, 0}, {W / 2, H}, {W, H}}},
				// xy-mirror of bottom half onto top half (Routine 4.2)
				{{{0, 0}, {W, 0}, {W, H / 2}, {0, H / 2}}, {{W, H}, {0, H}, {0, H / 2}, {W, H / 2}}},
			}
			for qi, q := range quads {
				d.BindTexture(tex)
				d.SetBlend(blend)
				d.DrawQuad(q[0], q[1])
				refDraw(ref, tex, q[0], q[1], blend)
				for i := range ref.Data {
					if d.fb.Data[i] != ref.Data[i] {
						t.Fatalf("%dx%d blend=%v quad %d: fb[%d]=%v ref=%v",
							sh.w, sh.h, blend, qi, i, d.fb.Data[i], ref.Data[i])
					}
				}
			}
		}
	}
}

func TestDrawQuadMatchesReferenceQuick(t *testing.T) {
	// Random axis-aligned quads with random axis-aligned (possibly flipped)
	// texcoord rectangles must match the reference rasterizer.
	const W, H = 16, 16
	prop := func(seed int64, ax0, ay0, aw, ah uint8, flipX, flipY bool) bool {
		tex := randomTexture(W, H, seed)
		d := NewDevice[float32](W, H)
		copyQuad(d, tex)
		ref := d.fb.Clone()

		x0 := int(ax0 % W)
		y0 := int(ay0 % H)
		w := int(aw%uint8(W-x0)) + 1
		h := int(ah%uint8(H-y0)) + 1
		v := [4]Point{
			{float64(x0), float64(y0)}, {float64(x0 + w), float64(y0)},
			{float64(x0 + w), float64(y0 + h)}, {float64(x0), float64(y0 + h)},
		}
		tc := v
		if flipX {
			tc[0].X, tc[1].X = tc[1].X, tc[0].X
			tc[3].X, tc[2].X = tc[2].X, tc[3].X
		}
		if flipY {
			tc[0].Y, tc[3].Y = tc[3].Y, tc[0].Y
			tc[1].Y, tc[2].Y = tc[2].Y, tc[1].Y
		}
		d.BindTexture(tex)
		d.SetBlend(BlendMin)
		d.DrawQuad(v, tc)
		refDraw(ref, tex, v, tc, BlendMin)
		for i := range ref.Data {
			if d.fb.Data[i] != ref.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawQuadParallelMatchesSerial(t *testing.T) {
	tex := randomTexture(64, 64, 9)
	serial := NewDevice[float32](64, 64)
	serial.parallelThreshold = 1 << 30 // never parallel
	par := NewDevice[float32](64, 64)
	par.parallelThreshold = 1 // always parallel
	for _, d := range []*Device[float32]{serial, par} {
		copyQuad(d, tex)
		d.SetBlend(BlendMax)
		v := [4]Point{{0, 0}, {64, 0}, {64, 32}, {0, 32}}
		tc := [4]Point{{64, 64}, {0, 64}, {0, 32}, {64, 32}}
		d.DrawQuad(v, tc)
	}
	for i := range serial.fb.Data {
		if serial.fb.Data[i] != par.fb.Data[i] {
			t.Fatalf("parallel shading diverged at %d", i)
		}
	}
}

func TestDrawQuadClipping(t *testing.T) {
	tex := randomTexture(4, 4, 3)
	d := NewDevice[float32](4, 4)
	copyQuad(d, tex)
	ref := d.fb.Clone()
	// Quad extends past the framebuffer on all sides.
	v := [4]Point{{-2, -2}, {6, -2}, {6, 6}, {-2, 6}}
	tc := [4]Point{{6, 6}, {-2, 6}, {-2, -2}, {6, -2}}
	d.BindTexture(tex)
	d.SetBlend(BlendMin)
	d.DrawQuad(v, tc)
	refDraw(ref, tex, v, tc, BlendMin)
	for i := range ref.Data {
		if d.fb.Data[i] != ref.Data[i] {
			t.Fatalf("clipped draw mismatch at %d: got %v want %v", i, d.fb.Data[i], ref.Data[i])
		}
	}
}

func TestDrawQuadRejectsBadGeometry(t *testing.T) {
	d := NewDevice[float32](4, 4)
	d.BindTexture(randomTexture(4, 4, 4))
	cases := [][4]Point{
		{{0, 0}, {4, 1}, {4, 4}, {0, 4}},     // not axis-aligned
		{{4, 0}, {0, 0}, {0, 4}, {4, 4}},     // wrong winding
		{{0.5, 0}, {4, 0}, {4, 4}, {0.5, 4}}, // non-integral corner
	}
	for i, v := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: bad quad did not panic", i)
				}
			}()
			d.DrawQuad(v, v)
		}()
	}
}

func TestDrawQuadRejectsNonAffineTexcoords(t *testing.T) {
	d := NewDevice[float32](4, 4)
	d.BindTexture(randomTexture(4, 4, 5))
	v := [4]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	tc := [4]Point{{0, 0}, {4, 0}, {4, 4}, {1, 4}} // perspective-ish warp
	defer func() {
		if recover() == nil {
			t.Fatal("non-affine texcoords did not panic")
		}
	}()
	d.DrawQuad(v, tc)
}

func TestDrawQuadWithoutTexturePanics(t *testing.T) {
	d := NewDevice[float32](4, 4)
	v := [4]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	defer func() {
		if recover() == nil {
			t.Fatal("DrawQuad without texture did not panic")
		}
	}()
	d.DrawQuad(v, v)
}

func TestStatsCounting(t *testing.T) {
	tex := randomTexture(8, 8, 6)
	d := NewDevice[float32](8, 8)
	d.Upload(tex)
	copyQuad(d, tex) // 64 fragments, no blend
	d.SetBlend(BlendMin)
	v := [4]Point{{0, 0}, {8, 0}, {8, 4}, {0, 4}}
	tc := [4]Point{{8, 8}, {0, 8}, {0, 4}, {8, 4}}
	d.DrawQuad(v, tc) // 32 fragments, blended
	d.ReadFramebuffer()

	s := d.Stats()
	if s.DrawCalls != 2 {
		t.Fatalf("DrawCalls = %d, want 2", s.DrawCalls)
	}
	if s.Fragments != 96 {
		t.Fatalf("Fragments = %d, want 96", s.Fragments)
	}
	if s.BlendOps != 32 {
		t.Fatalf("BlendOps = %d, want 32", s.BlendOps)
	}
	if s.TexelFetches != 96 {
		t.Fatalf("TexelFetches = %d, want 96", s.TexelFetches)
	}
	wantBytes := int64(8 * 8 * 16)
	if s.BytesUp != wantBytes || s.BytesDown != wantBytes {
		t.Fatalf("bus bytes = %d/%d, want %d/%d", s.BytesUp, s.BytesDown, wantBytes, wantBytes)
	}
	if s.Transfers != 2 {
		t.Fatalf("Transfers = %d, want 2", s.Transfers)
	}

	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats left non-zero counters")
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{DrawCalls: 3, Fragments: 10, BytesUp: 100}
	b := Stats{DrawCalls: 1, Fragments: 4, BytesUp: 60}
	a.Add(b)
	if a.DrawCalls != 4 || a.Fragments != 14 || a.BytesUp != 160 {
		t.Fatalf("Add = %+v", a)
	}
	diff := a.Sub(b)
	if diff.DrawCalls != 3 || diff.Fragments != 10 || diff.BytesUp != 100 {
		t.Fatalf("Sub = %+v", diff)
	}
}

func TestSwapToTextureNoBusTraffic(t *testing.T) {
	tex := randomTexture(4, 4, 7)
	d := NewDevice[float32](4, 4)
	copyQuad(d, tex)
	before := d.Stats()
	dst := NewTexture[float32](4, 4)
	d.SwapToTexture(dst)
	after := d.Stats()
	if after.BytesDown != before.BytesDown || after.BytesUp != before.BytesUp {
		t.Fatal("SwapToTexture generated bus traffic")
	}
	for i := range dst.Data {
		if dst.Data[i] != d.fb.Data[i] {
			t.Fatal("SwapToTexture did not copy the framebuffer")
		}
	}
}

func TestRunFragmentPass(t *testing.T) {
	tex := randomTexture(4, 4, 8)
	d := NewDevice[float32](4, 4)
	d.BindTexture(tex)
	// A pass that copies the mirror texel.
	d.RunFragmentPass(0, 0, 4, 4, 53, func(x, y int, sample func(int, int) [4]float32, out []float32) {
		v := sample(3-x, 3-y)
		copy(out, v[:])
	})
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			for c := 0; c < Channels; c++ {
				if got, want := d.fb.At(x, y, c), tex.At(3-x, 3-y, c); got != want {
					t.Fatalf("pass output (%d,%d,%d) = %v, want %v", x, y, c, got, want)
				}
			}
		}
	}
	s := d.Stats()
	if s.Passes != 1 || s.Fragments != 16 || s.ProgramInstr != 16*53 || s.TexelFetches != 16 {
		t.Fatalf("pass stats = %+v", s)
	}
}

func TestRunFragmentPassWithoutTexturePanics(t *testing.T) {
	d := NewDevice[float32](2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.RunFragmentPass(0, 0, 2, 2, 1, func(x, y int, s func(int, int) [4]float32, out []float32) {})
}

func TestBlendFuncString(t *testing.T) {
	if BlendMin.String() != "min" || BlendMax.String() != "max" || BlendReplace.String() != "replace" {
		t.Fatal("BlendFunc.String mismatch")
	}
	if BlendFunc(99).String() == "" {
		t.Fatal("unknown BlendFunc should still stringify")
	}
}

func TestDrawQuadNonUnitStride(t *testing.T) {
	// Texcoords scaled 2x in x sample every other texel: exercises the
	// generic (non-unit-stride) shading path against the reference.
	tex := randomTexture(16, 8, 10)
	d := NewDevice[float32](16, 8)
	copyQuad(d, tex)
	ref := d.fb.Clone()
	v := [4]Point{{0, 0}, {8, 0}, {8, 8}, {0, 8}}
	tc := [4]Point{{0, 0}, {16, 0}, {16, 8}, {0, 8}}
	d.BindTexture(tex)
	d.SetBlend(BlendMax)
	d.DrawQuad(v, tc)
	refDraw(ref, tex, v, tc, BlendMax)
	for i := range ref.Data {
		if d.fb.Data[i] != ref.Data[i] {
			t.Fatalf("non-unit stride mismatch at %d", i)
		}
	}
}

func TestDrawQuadGenericReplace(t *testing.T) {
	// Generic path with replace blending (2x stride).
	tex := randomTexture(8, 8, 11)
	d := NewDevice[float32](8, 8)
	copyQuad(d, tex)
	ref := d.fb.Clone()
	v := [4]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	tc := [4]Point{{0, 0}, {8, 0}, {8, 8}, {0, 8}}
	d.BindTexture(tex)
	d.SetBlend(BlendReplace)
	d.DrawQuad(v, tc)
	refDraw(ref, tex, v, tc, BlendReplace)
	for i := range ref.Data {
		if d.fb.Data[i] != ref.Data[i] {
			t.Fatalf("generic replace mismatch at %d", i)
		}
	}
}

func TestReadTextureAccountsBus(t *testing.T) {
	d := NewDevice[float32](4, 4)
	tex := randomTexture(4, 4, 12)
	before := d.Stats()
	got := d.ReadTexture(tex)
	after := d.Stats()
	if after.BytesDown-before.BytesDown != int64(tex.Bytes()) {
		t.Fatal("ReadTexture did not account bus bytes")
	}
	if after.Transfers-before.Transfers != 1 {
		t.Fatal("ReadTexture did not count a transfer")
	}
	got.Set(0, 0, 0, 99)
	if tex.At(0, 0, 0) == 99 {
		t.Fatal("ReadTexture returned aliased storage")
	}
}

func TestFramebufferAccessor(t *testing.T) {
	d := NewDevice[float32](2, 2)
	if d.Framebuffer() == nil || d.Framebuffer().W != 2 {
		t.Fatal("Framebuffer accessor broken")
	}
}

func TestCountGreaterPanicsWithoutTexture(t *testing.T) {
	d := NewDevice[float32](2, 2)
	for _, fn := range []func(){
		func() { d.CountGreater(0) },
		func() { d.CountGreaterEqual(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestCountGreaterStats(t *testing.T) {
	tex := randomTexture(4, 4, 13)
	d := NewDevice[float32](4, 4)
	d.BindTexture(tex)
	d.CountGreater(50)
	d.CountGreaterEqual(50)
	s := d.Stats()
	if s.Passes != 2 || s.Fragments != 32 || s.ProgramInstr != 32 {
		t.Fatalf("counting-pass stats = %+v", s)
	}
}

func TestHalfPrecisionTargets(t *testing.T) {
	tex := NewTexture[float32](4, 4)
	vals := []float32{1.0001, 2.0002, 3.14159, 65504, 1e-9, -1.0001}
	for i, v := range vals {
		tex.Set(i%4, i/4, 0, v)
	}
	d := NewDevice[float32](4, 4)
	d.SetHalfPrecisionTargets(true)
	copyQuad(d, tex)
	// Every written value must be exactly representable in binary16:
	// re-quantizing is a no-op.
	for i, v := range d.fb.Data {
		q := float32(float64(v)) // identity; real check below
		_ = q
		if d.fb.Data[i] != d.fb.Data[i] {
			continue
		}
	}
	if got := d.fb.At(0, 0, 0); got == 1.0001 {
		t.Fatal("value not quantized to half precision")
	}
	if got := d.fb.At(3, 0, 0); got != 65504 {
		t.Fatalf("exact half value mangled: %v", got)
	}
}

func TestHalfPrecisionBlendStillOrders(t *testing.T) {
	// Min-blending with 16-bit targets must keep the channel-wise minimum
	// of the quantized values — ordering survives monotone quantization.
	tex := randomTexture(8, 8, 15)
	d := NewDevice[float32](8, 8)
	d.SetHalfPrecisionTargets(true)
	copyQuad(d, tex)
	d.SetBlend(BlendMin)
	v := [4]Point{{0, 0}, {8, 0}, {8, 4}, {0, 4}}
	tc := [4]Point{{8, 8}, {0, 8}, {0, 4}, {8, 4}}
	d.DrawQuad(v, tc)
	for y := 0; y < 4; y++ {
		for x := 0; x < 8; x++ {
			i := y*8 + x
			j := 63 - i
			for c := 0; c < Channels; c++ {
				a := quantHalf(tex.At(x, y, c))
				b := quantHalf(tex.At(j%8, j/8, c))
				want := a
				if b < a {
					want = b
				}
				if got := d.fb.At(x, y, c); got != want {
					t.Fatalf("(%d,%d,%d) = %v, want %v", x, y, c, got, want)
				}
			}
		}
	}
}
