package gpu

// Occlusion queries: the other fixed-function counting mechanism of
// 2004-era GPUs, which the paper's companion work (Govindaraju et al.,
// "Fast computation of database operations using graphics processors")
// uses for predicates, aggregates and k-th largest selection. A full-screen
// quad is rendered with an alpha-style test against a reference value and
// the hardware reports how many fragments passed.

// CountGreater renders a counting pass over the bound texture and reports,
// per channel, how many texels hold a value strictly greater than ref.
// Cost accounting matches a single-cycle alpha-test pass over every texel.
func (d *Device[T]) CountGreater(ref T) [Channels]int64 {
	if d.tex == nil {
		panic("gpu: CountGreater without a bound texture")
	}
	tex := d.tex
	area := int64(tex.Texels())
	d.stats.Passes++
	d.stats.Fragments += area
	d.stats.TexelFetches += area
	d.stats.ProgramInstr += area // one test instruction per fragment
	var counts [Channels]int64
	for p := 0; p < tex.Texels(); p++ {
		base := p * Channels
		for c := 0; c < Channels; c++ {
			if tex.Data[base+c] > ref {
				counts[c]++
			}
		}
	}
	return counts
}

// CountGreaterEqual is the >= variant of CountGreater.
func (d *Device[T]) CountGreaterEqual(ref T) [Channels]int64 {
	if d.tex == nil {
		panic("gpu: CountGreaterEqual without a bound texture")
	}
	tex := d.tex
	area := int64(tex.Texels())
	d.stats.Passes++
	d.stats.Fragments += area
	d.stats.TexelFetches += area
	d.stats.ProgramInstr += area
	var counts [Channels]int64
	for p := 0; p < tex.Texels(); p++ {
		base := p * Channels
		for c := 0; c < Channels; c++ {
			if tex.Data[base+c] >= ref {
				counts[c]++
			}
		}
	}
	return counts
}
