package gpu

import "testing"

func TestTexCacheUnitSpanHitRate(t *testing.T) {
	// A full-texture copy reads every texel once in unit stride: with
	// 4-texel lines the hit rate must be exactly 3/4.
	tex := randomTexture(64, 64, 41)
	d := NewDevice[float32](64, 64)
	d.EnableTextureCache(TexCacheConfig{})
	copyQuad(d, tex)
	st := d.TextureCacheStats()
	if st.Fetches != 64*64 {
		t.Fatalf("Fetches = %d", st.Fetches)
	}
	if got := st.HitRate(); got < 0.74 || got > 0.76 {
		t.Fatalf("HitRate = %v, want ~0.75", got)
	}
	if st.BytesFromMemory != st.LineMisses*4*Channels*4 {
		t.Fatalf("BytesFromMemory inconsistent: %+v", st)
	}
}

func TestTexCacheDisabledZero(t *testing.T) {
	tex := randomTexture(8, 8, 42)
	d := NewDevice[float32](8, 8)
	copyQuad(d, tex)
	if d.TextureCacheStats() != (TexCacheStats{}) {
		t.Fatal("stats nonzero with cache disabled")
	}
}

func TestTexCacheFunctionalUnchanged(t *testing.T) {
	tex := randomTexture(32, 32, 43)
	plain := NewDevice[float32](32, 32)
	cached := NewDevice[float32](32, 32)
	cached.EnableTextureCache(TexCacheConfig{LineTexels: 8})
	for _, d := range []*Device[float32]{plain, cached} {
		copyQuad(d, tex)
		d.SetBlend(BlendMin)
		v := [4]Point{{0, 0}, {32, 0}, {32, 16}, {0, 16}}
		tc := [4]Point{{32, 32}, {0, 32}, {0, 16}, {32, 16}}
		d.DrawQuad(v, tc)
	}
	for i := range plain.fb.Data {
		if plain.fb.Data[i] != cached.fb.Data[i] {
			t.Fatal("texture cache changed rendering output")
		}
	}
	if cached.TextureCacheStats().Fetches == 0 {
		t.Fatal("cache recorded nothing")
	}
}

func TestTexCacheProgrammablePath(t *testing.T) {
	tex := randomTexture(8, 8, 44)
	d := NewDevice[float32](8, 8)
	d.EnableTextureCache(TexCacheConfig{})
	d.BindTexture(tex)
	d.RunFragmentPass(0, 0, 8, 8, 1, func(x, y int, sample func(int, int) [4]float32, out []float32) {
		v := sample(x, y)
		copy(out, v[:])
	})
	if d.TextureCacheStats().Fetches != 64 {
		t.Fatalf("programmable-path fetches = %d", d.TextureCacheStats().Fetches)
	}
}

func TestTexCacheEmptyHitRate(t *testing.T) {
	if (TexCacheStats{}).HitRate() != 0 {
		t.Fatal("zero-stats HitRate should be 0")
	}
}
