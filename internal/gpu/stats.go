package gpu

// Stats counts the primitive operations a Device has executed. The counters
// are exact — every fragment, blend and bus byte of the simulated run is
// recorded — and feed the perfmodel package's GeForce-6800 timing model.
type Stats struct {
	DrawCalls    int64 // quads submitted
	Passes       int64 // programmable fragment passes (bitonic baseline path)
	Fragments    int64 // fragments shaded by fixed-function rasterization
	BlendOps     int64 // 4-wide vector blend operations (one per fragment with blending on)
	TexelFetches int64 // texture samples
	ProgramInstr int64 // fragment-program instructions (programmable path)
	BytesUp      int64 // CPU -> GPU bus traffic
	BytesDown    int64 // GPU -> CPU bus traffic
	Transfers    int64 // individual bus transfers (each pays fixed latency)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.DrawCalls += o.DrawCalls
	s.Passes += o.Passes
	s.Fragments += o.Fragments
	s.BlendOps += o.BlendOps
	s.TexelFetches += o.TexelFetches
	s.ProgramInstr += o.ProgramInstr
	s.BytesUp += o.BytesUp
	s.BytesDown += o.BytesDown
	s.Transfers += o.Transfers
}

// Sub returns s - o, useful for measuring a region of work.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		DrawCalls:    s.DrawCalls - o.DrawCalls,
		Passes:       s.Passes - o.Passes,
		Fragments:    s.Fragments - o.Fragments,
		BlendOps:     s.BlendOps - o.BlendOps,
		TexelFetches: s.TexelFetches - o.TexelFetches,
		ProgramInstr: s.ProgramInstr - o.ProgramInstr,
		BytesUp:      s.BytesUp - o.BytesUp,
		BytesDown:    s.BytesDown - o.BytesDown,
		Transfers:    s.Transfers - o.Transfers,
	}
}
