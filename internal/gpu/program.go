package gpu

import "gpustream/internal/sorter"

// FragmentProgram computes the output color of the pixel at (x, y). sample
// reads the bound texture (counted as a texel fetch). Returning the slice
// passed in as out avoids per-fragment allocation.
type FragmentProgram[T sorter.Value] func(x, y int, sample func(tx, ty int) [4]T, out []T)

// RunFragmentPass executes a programmable fragment pass over the framebuffer
// region [x0, x1) x [y0, y1): prog runs once per pixel and its output
// replaces the pixel. instrPerFragment is the declared instruction count of
// the program and feeds the timing model; the earlier GPU bitonic sort the
// paper compares against executes at least 53 instructions per pixel per
// stage (Section 4.5), an order of magnitude more than a blend.
//
// This models the Purcell et al. style of GPU computation — one rendering
// pass of a fragment program per algorithm stage — as opposed to the paper's
// fixed-function blending approach.
func (d *Device[T]) RunFragmentPass(x0, y0, x1, y1, instrPerFragment int, prog FragmentProgram[T]) {
	x0 = clampInt(x0, 0, d.fb.W)
	y0 = clampInt(y0, 0, d.fb.H)
	x1 = clampInt(x1, 0, d.fb.W)
	y1 = clampInt(y1, 0, d.fb.H)
	if x0 >= x1 || y0 >= y1 {
		return
	}
	if d.tex == nil {
		panic("gpu: RunFragmentPass without a bound texture")
	}
	area := int64(x1-x0) * int64(y1-y0)
	d.stats.Passes++
	d.stats.Fragments += area
	d.stats.ProgramInstr += area * int64(instrPerFragment)

	tex := d.tex
	fetches := int64(0)
	sample := func(tx, ty int) [4]T {
		fetches++
		tx = clampInt(tx, 0, tex.W-1)
		ty = clampInt(ty, 0, tex.H-1)
		d.texcache.noteFetch(ty*tex.W + tx)
		i := (ty*tex.W + tx) * Channels
		return [4]T{tex.Data[i], tex.Data[i+1], tex.Data[i+2], tex.Data[i+3]}
	}
	for y := y0; y < y1; y++ {
		di := (y*d.fb.W + x0) * Channels
		for x := x0; x < x1; x++ {
			out := d.fb.Data[di : di+Channels]
			prog(x, y, sample, out)
			if d.halfTargets {
				for c := range out {
					out[c] = d.halfRound(out[c])
				}
			}
			di += Channels
		}
	}
	d.stats.TexelFetches += fetches
}
