// Package gpu is a functional simulator of the fixed-function GPU subset the
// paper's algorithms use: RGBA float32 textures, a framebuffer, REPLACE /
// MIN / MAX color blending, and rasterization of axis-aligned textured quads
// with affine texture-coordinate interpolation (Section 4.2 of the paper).
//
// The simulator plays the role of the NVIDIA GeForce 6800 Ultra the paper
// runs on. It executes the paper's routines (Copy, ComputeMin, ComputeMax,
// SortStep, ...) with real data so correctness is checked for real, and it
// counts every primitive operation — fragments shaded, blend operations,
// texel fetches, bytes across the CPU<->GPU bus — so that the companion
// perfmodel package can convert counts to modeled GeForce-6800 time.
package gpu

import "fmt"

// Channels is the number of color channels per texel (RGBA).
const Channels = 4

// Texture is a W x H array of RGBA float32 texels, the GPU's only data
// container (paper Section 4.1). Texels are stored row-major, channels
// interleaved: texel (x, y) channel c lives at ((y*W)+x)*4 + c.
type Texture struct {
	W, H int
	Data []float32
}

// NewTexture allocates a zeroed texture of the given dimensions.
func NewTexture(w, h int) *Texture {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("gpu: invalid texture size %dx%d", w, h))
	}
	return &Texture{W: w, H: h, Data: make([]float32, w*h*Channels)}
}

// Texels reports the number of texels (W*H).
func (t *Texture) Texels() int { return t.W * t.H }

// Bytes reports the texture's size in bytes (4 channels x 4 bytes).
func (t *Texture) Bytes() int { return t.W * t.H * Channels * 4 }

// At returns the value of channel c at texel (x, y).
func (t *Texture) At(x, y, c int) float32 {
	return t.Data[(y*t.W+x)*Channels+c]
}

// Set stores v into channel c at texel (x, y).
func (t *Texture) Set(x, y, c int, v float32) {
	t.Data[(y*t.W+x)*Channels+c] = v
}

// Fill sets every channel of every texel to v.
func (t *Texture) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Clone returns a deep copy of the texture.
func (t *Texture) Clone() *Texture {
	c := NewTexture(t.W, t.H)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's contents into t. The dimensions must match.
func (t *Texture) CopyFrom(src *Texture) {
	if t.W != src.W || t.H != src.H {
		panic("gpu: CopyFrom dimension mismatch")
	}
	copy(t.Data, src.Data)
}

// PackChannels distributes data across the four color channels of a W x H
// texture: the first W*H values go to channel 0, the next W*H to channel 1,
// and so on. This is the paper's trick of buffering four windows of data and
// sorting them in parallel with the GPU's 4-wide vector blend units
// (Section 4.1). Unfilled positions are set to pad, which for sorting is
// +Inf so padding migrates to the end of each sorted channel.
//
// It panics unless 4*W*H >= len(data).
func PackChannels(data []float32, w, h int, pad float32) *Texture {
	t := NewTexture(w, h)
	per := w * h
	if len(data) > Channels*per {
		panic(fmt.Sprintf("gpu: cannot pack %d values into %dx%dx4 texture", len(data), w, h))
	}
	for i := range t.Data {
		t.Data[i] = pad
	}
	for i, v := range data {
		c := i / per
		p := i % per
		t.Data[p*Channels+c] = v
	}
	return t
}

// UnpackChannel extracts channel c as a contiguous slice of W*H values in
// texel order.
func (t *Texture) UnpackChannel(c int) []float32 {
	out := make([]float32, t.Texels())
	for p := range out {
		out[p] = t.Data[p*Channels+c]
	}
	return out
}

// LoadChannel stores data into channel c in texel order. It panics if data
// is longer than W*H; shorter data leaves the tail untouched.
func (t *Texture) LoadChannel(c int, data []float32) {
	if len(data) > t.Texels() {
		panic("gpu: LoadChannel data larger than texture")
	}
	for p, v := range data {
		t.Data[p*Channels+c] = v
	}
}

// TextureDims returns the width and height of the texture used to hold n
// values in a single channel, following the paper's layout: a power-of-two
// square-ish texture with W = 2^ceil(log4 n) style splitting. Width and
// height are each powers of two and W*H is the smallest such product >= n.
func TextureDims(n int) (w, h int) {
	if n <= 0 {
		return 1, 1
	}
	w, h = 1, 1
	for w*h < n {
		if w <= h {
			w *= 2
		} else {
			h *= 2
		}
	}
	return w, h
}
