// Package gpu is a functional simulator of the fixed-function GPU subset the
// paper's algorithms use: RGBA textures, a framebuffer, REPLACE / MIN / MAX
// color blending, and rasterization of axis-aligned textured quads with
// affine texture-coordinate interpolation (Section 4.2 of the paper).
//
// The simulator plays the role of the NVIDIA GeForce 6800 Ultra the paper
// runs on. It executes the paper's routines (Copy, ComputeMin, ComputeMax,
// SortStep, ...) with real data so correctness is checked for real, and it
// counts every primitive operation — fragments shaded, blend operations,
// texel fetches, bytes across the CPU<->GPU bus — so that the companion
// perfmodel package can convert counts to modeled GeForce-6800 time.
//
// Textures and devices are generic over the stack's ordered value types. The
// 2004 hardware blended float32 render targets only; the other
// instantiations are a simulator extension that reuses the same comparator
// structure, so operation counts — and therefore modeled GPU time — depend
// only on the data shape, never on the element type. Cost accounting
// likewise stays in the hardware's native units: a texel is 4 channels x 4
// bytes regardless of the simulated element type.
package gpu

import (
	"fmt"

	"gpustream/internal/sorter"
)

// Channels is the number of color channels per texel (RGBA).
const Channels = 4

// texelBytes is the modeled size of one RGBA texel on the wire and in video
// memory: 4 float32 channels, the 2004 hardware's native format. It is
// deliberately independent of the simulated element type so that modeled bus
// and memory traffic are identical across instantiations.
const texelBytes = Channels * 4

// Texture is a W x H array of RGBA texels, the GPU's only data container
// (paper Section 4.1). Texels are stored row-major, channels interleaved:
// texel (x, y) channel c lives at ((y*W)+x)*4 + c.
type Texture[T sorter.Value] struct {
	W, H int
	Data []T
}

// NewTexture allocates a zeroed texture of the given dimensions.
func NewTexture[T sorter.Value](w, h int) *Texture[T] {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("gpu: invalid texture size %dx%d", w, h))
	}
	return &Texture[T]{W: w, H: h, Data: make([]T, w*h*Channels)}
}

// Texels reports the number of texels (W*H).
func (t *Texture[T]) Texels() int { return t.W * t.H }

// Bytes reports the texture's modeled size in bytes (4 channels x 4 bytes
// per texel, the hardware's float32 format, independent of T).
func (t *Texture[T]) Bytes() int { return t.W * t.H * texelBytes }

// At returns the value of channel c at texel (x, y).
func (t *Texture[T]) At(x, y, c int) T {
	return t.Data[(y*t.W+x)*Channels+c]
}

// Set stores v into channel c at texel (x, y).
func (t *Texture[T]) Set(x, y, c int, v T) {
	t.Data[(y*t.W+x)*Channels+c] = v
}

// Fill sets every channel of every texel to v.
func (t *Texture[T]) Fill(v T) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Clone returns a deep copy of the texture.
func (t *Texture[T]) Clone() *Texture[T] {
	c := NewTexture[T](t.W, t.H)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's contents into t. The dimensions must match.
func (t *Texture[T]) CopyFrom(src *Texture[T]) {
	if t.W != src.W || t.H != src.H {
		panic("gpu: CopyFrom dimension mismatch")
	}
	copy(t.Data, src.Data)
}

// PackChannels distributes data across the four color channels of a W x H
// texture: the first W*H values go to channel 0, the next W*H to channel 1,
// and so on. This is the paper's trick of buffering four windows of data and
// sorting them in parallel with the GPU's 4-wide vector blend units
// (Section 4.1). Unfilled positions are set to pad, which for sorting is
// the type's maximum so padding migrates to the end of each sorted channel.
//
// It panics unless 4*W*H >= len(data).
func PackChannels[T sorter.Value](data []T, w, h int, pad T) *Texture[T] {
	t := NewTexture[T](w, h)
	per := w * h
	if len(data) > Channels*per {
		panic(fmt.Sprintf("gpu: cannot pack %d values into %dx%dx4 texture", len(data), w, h))
	}
	for i := range t.Data {
		t.Data[i] = pad
	}
	for i, v := range data {
		c := i / per
		p := i % per
		t.Data[p*Channels+c] = v
	}
	return t
}

// UnpackChannel extracts channel c as a contiguous slice of W*H values in
// texel order.
func (t *Texture[T]) UnpackChannel(c int) []T {
	out := make([]T, t.Texels())
	for p := range out {
		out[p] = t.Data[p*Channels+c]
	}
	return out
}

// LoadChannel stores data into channel c in texel order. It panics if data
// is longer than W*H; shorter data leaves the tail untouched.
func (t *Texture[T]) LoadChannel(c int, data []T) {
	if len(data) > t.Texels() {
		panic("gpu: LoadChannel data larger than texture")
	}
	for p, v := range data {
		t.Data[p*Channels+c] = v
	}
}

// TextureDims returns the width and height of the texture used to hold n
// values in a single channel, following the paper's layout: a power-of-two
// square-ish texture with W = 2^ceil(log4 n) style splitting. Width and
// height are each powers of two and W*H is the smallest such product >= n.
func TextureDims(n int) (w, h int) {
	if n <= 0 {
		return 1, 1
	}
	w, h = 1, 1
	for w*h < n {
		if w <= h {
			w *= 2
		} else {
			h *= 2
		}
	}
	return w, h
}
