package gpu

import "testing"

func BenchmarkDrawQuadCopy(b *testing.B) {
	tex := randomTexture(256, 256, 1)
	d := NewDevice[float32](256, 256)
	d.BindTexture(tex)
	d.SetBlend(BlendReplace)
	quad := [4]Point{{0, 0}, {256, 0}, {256, 256}, {0, 256}}
	b.SetBytes(256 * 256 * Channels * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DrawQuad(quad, quad)
	}
}

func BenchmarkDrawQuadBlendMin(b *testing.B) {
	tex := randomTexture(256, 256, 2)
	d := NewDevice[float32](256, 256)
	copyQuad(d, tex)
	d.SetBlend(BlendMin)
	v := [4]Point{{0, 0}, {256, 0}, {256, 128}, {0, 128}}
	tc := [4]Point{{256, 256}, {0, 256}, {0, 128}, {256, 128}}
	b.SetBytes(256 * 128 * Channels * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DrawQuad(v, tc)
	}
}

func BenchmarkFragmentPass(b *testing.B) {
	tex := randomTexture(128, 128, 3)
	d := NewDevice[float32](128, 128)
	d.BindTexture(tex)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RunFragmentPass(0, 0, 128, 128, 53, func(x, y int, s func(int, int) [4]float32, out []float32) {
			v := s(x, y)
			copy(out, v[:])
		})
	}
}
