package gpu

import (
	"fmt"
	"runtime"
	"sync"

	"gpustream/internal/half"
	"gpustream/internal/sorter"
)

// BlendFunc selects how an incoming fragment color is combined with the color
// already in the framebuffer. The paper's sorting comparators use BlendMin
// and BlendMax (Section 4.2.2); BlendReplace implements plain copies. Under
// the generic simulator the min/max blends compare with the element type's
// natural ordering — for float32 that is exactly the 2004 hardware's blend
// unit, for the other instantiations it is the simulator extension described
// in the package comment.
type BlendFunc int

const (
	// BlendReplace writes the fragment color, discarding the old pixel.
	BlendReplace BlendFunc = iota
	// BlendMin keeps the channel-wise minimum of fragment and pixel.
	BlendMin
	// BlendMax keeps the channel-wise maximum of fragment and pixel.
	BlendMax
)

// String implements fmt.Stringer.
func (b BlendFunc) String() string {
	switch b {
	case BlendReplace:
		return "replace"
	case BlendMin:
		return "min"
	case BlendMax:
		return "max"
	}
	return fmt.Sprintf("BlendFunc(%d)", int(b))
}

// Point is a 2D vertex or texture coordinate.
type Point struct{ X, Y float64 }

// Device simulates a single GPU: a framebuffer, one bound texture, blend
// state, and operation counters. A Device is not safe for concurrent use;
// like a real graphics context it is driven from one thread, though DrawQuad
// internally shades large quads with parallel workers (modeling the 16
// parallel fragment pipes of the GeForce 6800).
type Device[T sorter.Value] struct {
	fb        *Texture[T]
	tex       *Texture[T]
	texturing bool
	blending  bool
	blend     BlendFunc
	stats     Stats

	// parallelThreshold is the minimum quad area (in pixels) before rows
	// are shaded by parallel workers. Exposed for tests.
	parallelThreshold int

	// texcache, when non-nil, models the texture cache (see texcache.go).
	texcache *texCache

	// halfTargets, when set, rounds every value written to the render
	// target through IEEE half precision, modeling the paper's 16-bit
	// offscreen buffers (Section 4.5). halfRound is the rounding function;
	// it is nil for every element type except float32, because binary16
	// quantization only models the float32 pipeline — other instantiations
	// pass through unquantized.
	halfTargets bool
	halfRound   func(T) T
}

// halfRoundFn returns the binary16 rounding function when T is float32 and
// nil otherwise.
func halfRoundFn[T sorter.Value]() func(T) T {
	var z T
	if _, ok := any(z).(float32); !ok {
		return nil
	}
	return func(v T) T {
		f := any(v).(float32)
		return any(half.FromFloat32(f).ToFloat32()).(T)
	}
}

// SetHalfPrecisionTargets switches the framebuffer between full 32-bit and
// the paper's 16-bit offscreen-buffer precision. Because binary16
// quantization is monotone, sorting still orders correctly; values simply
// coarsen to ~11 bits of mantissa. The mode only quantizes float32
// instantiations; for other element types it is a no-op.
func (d *Device[T]) SetHalfPrecisionTargets(on bool) {
	d.halfTargets = on && d.halfRound != nil
}

// NewDevice creates a device with a w x h framebuffer.
func NewDevice[T sorter.Value](w, h int) *Device[T] {
	return &Device[T]{
		fb:                NewTexture[T](w, h),
		blend:             BlendReplace,
		parallelThreshold: 1 << 14,
		halfRound:         halfRoundFn[T](),
	}
}

// Framebuffer exposes the device's framebuffer. Mutating it directly is the
// simulation analog of rendering from the CPU and is used only by tests.
func (d *Device[T]) Framebuffer() *Texture[T] { return d.fb }

// Stats returns a snapshot of the operation counters.
func (d *Device[T]) Stats() Stats { return d.stats }

// ResetStats zeroes the operation counters.
func (d *Device[T]) ResetStats() { d.stats = Stats{} }

// BindTexture makes t the active texture and enables texturing.
// Binding nil disables texturing.
func (d *Device[T]) BindTexture(t *Texture[T]) {
	d.tex = t
	d.texturing = t != nil
}

// SetBlend enables blending with the given function. BlendReplace disables
// blending (it is the fixed-function default).
func (d *Device[T]) SetBlend(f BlendFunc) {
	d.blend = f
	d.blending = f != BlendReplace
}

// Upload accounts for a CPU -> GPU transfer of t over the bus. In the
// simulator textures already live in host memory, so only the counters move;
// the perfmodel turns the byte count into AGP-bus time.
func (d *Device[T]) Upload(t *Texture[T]) {
	d.stats.BytesUp += int64(t.Bytes())
	d.stats.Transfers++
}

// ReadFramebuffer returns a copy of the framebuffer and accounts for the
// GPU -> CPU readback over the bus.
func (d *Device[T]) ReadFramebuffer() *Texture[T] {
	d.stats.BytesDown += int64(d.fb.Bytes())
	d.stats.Transfers++
	return d.fb.Clone()
}

// ReadTexture returns a copy of t and accounts for the GPU -> CPU readback
// over the bus, for algorithms whose final state lives in a render texture
// rather than the framebuffer.
func (d *Device[T]) ReadTexture(t *Texture[T]) *Texture[T] {
	d.stats.BytesDown += int64(t.Bytes())
	d.stats.Transfers++
	return t.Clone()
}

// SwapToTexture copies the framebuffer contents into t without bus traffic,
// modeling the paper's double-buffered offscreen buffers (Section 4.5): the
// output of one sorting step becomes the input texture of the next by a
// buffer swap, which is free on the GPU.
func (d *Device[T]) SwapToTexture(t *Texture[T]) {
	t.CopyFrom(d.fb)
}

// quadGeom captures a validated axis-aligned quad and its (bilinear, here
// always affine) texture-coordinate mapping.
type quadGeom struct {
	x0, y0, x1, y1         int     // pixel bounds, half-open
	u0, v0                 float64 // texcoords at the (x0, y0) corner
	dudx, dudy, dvdx, dvdy float64
}

// analyzeQuad validates that v describes an axis-aligned rectangle with
// vertices in the paper's order — (x0,y0), (x1,y0), (x1,y1), (x0,y1) — and
// that the texture coordinates t interpolate affinely across it (true for
// every routine in the paper). It returns the derived geometry.
func analyzeQuad(v, t [4]Point) (quadGeom, error) {
	var g quadGeom
	if v[0].Y != v[1].Y || v[2].Y != v[3].Y || v[0].X != v[3].X || v[1].X != v[2].X {
		return g, fmt.Errorf("gpu: quad vertices %v are not an axis-aligned rectangle", v)
	}
	if v[1].X < v[0].X || v[3].Y < v[0].Y {
		return g, fmt.Errorf("gpu: quad vertices %v are not in CCW order from the min corner", v)
	}
	// Bilinear interpolation degenerates to affine when opposite corner
	// sums match. Reject the non-affine case rather than approximate it.
	if t[0].X+t[2].X != t[1].X+t[3].X || t[0].Y+t[2].Y != t[1].Y+t[3].Y {
		return g, fmt.Errorf("gpu: texture coordinates %v are not affine over the quad", t)
	}
	w := v[1].X - v[0].X
	h := v[3].Y - v[0].Y
	if w <= 0 || h <= 0 {
		return g, fmt.Errorf("gpu: degenerate quad %v", v)
	}
	g.x0, g.y0 = int(v[0].X), int(v[0].Y)
	g.x1, g.y1 = int(v[1].X), int(v[3].Y)
	if float64(g.x0) != v[0].X || float64(g.y0) != v[0].Y || float64(g.x1) != v[1].X || float64(g.y1) != v[3].Y {
		return g, fmt.Errorf("gpu: quad corners %v must be integral", v)
	}
	g.u0, g.v0 = t[0].X, t[0].Y
	g.dudx = (t[1].X - t[0].X) / w
	g.dudy = (t[3].X - t[0].X) / h
	g.dvdx = (t[1].Y - t[0].Y) / w
	g.dvdy = (t[3].Y - t[0].Y) / h
	return g, nil
}

// DrawQuad rasterizes an axis-aligned textured quad: each covered pixel
// samples the bound texture at its interpolated texture coordinate (nearest
// filtering at the pixel center) and the result is combined into the
// framebuffer with the current blend function. This single operation is the
// comparator primitive of the paper's sorting networks: the texture
// coordinates express the comparator *mapping*, the blend function the
// comparator *comparison*.
//
// Vertices must form an axis-aligned rectangle with integral corners in the
// order (x0,y0), (x1,y0), (x1,y1), (x0,y1); texture coordinates must vary
// affinely. The quad is clipped to the framebuffer.
func (d *Device[T]) DrawQuad(v, t [4]Point) {
	g, err := analyzeQuad(v, t)
	if err != nil {
		panic(err)
	}
	// Clip to the framebuffer, shifting the texcoord origin along with the
	// quad's min corner so interpolation is unchanged for surviving pixels.
	if g.x0 < 0 {
		g.u0 += float64(-g.x0) * g.dudx
		g.v0 += float64(-g.x0) * g.dvdx
		g.x0 = 0
	}
	if g.y0 < 0 {
		g.u0 += float64(-g.y0) * g.dudy
		g.v0 += float64(-g.y0) * g.dvdy
		g.y0 = 0
	}
	if g.x1 > d.fb.W {
		g.x1 = d.fb.W
	}
	if g.y1 > d.fb.H {
		g.y1 = d.fb.H
	}
	if g.x0 >= g.x1 || g.y0 >= g.y1 {
		d.stats.DrawCalls++
		return
	}
	if !d.texturing {
		panic("gpu: DrawQuad without a bound texture")
	}

	area := int64(g.x1-g.x0) * int64(g.y1-g.y0)
	d.stats.DrawCalls++
	d.stats.Fragments += area
	d.stats.TexelFetches += area
	if d.blending {
		d.stats.BlendOps += area
	}

	// The texture-cache model accumulates sequentially ordered spans, so
	// it forces serial shading; the functional result is identical.
	if area >= int64(d.parallelThreshold) && d.texcache == nil {
		d.shadeRowsParallel(g)
	} else {
		d.shadeRows(g, g.y0, g.y1)
	}
}

// shadeRowsParallel splits the quad's rows across workers. Rows write
// disjoint framebuffer pixels, so no synchronization beyond the WaitGroup is
// needed — the same reason real fragment pipes can run lock-free.
func (d *Device[T]) shadeRowsParallel(g quadGeom) {
	workers := runtime.GOMAXPROCS(0)
	rows := g.y1 - g.y0
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		d.shadeRows(g, g.y0, g.y1)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := g.y0 + w*chunk
		hi := lo + chunk
		if hi > g.y1 {
			hi = g.y1
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			d.shadeRows(g, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// shadeRows shades rows [yLo, yHi) of the quad g.
func (d *Device[T]) shadeRows(g quadGeom, yLo, yHi int) {
	tex := d.tex
	fb := d.fb
	// Fast path: unit-stride source stepping in x with no cross-terms.
	// Every routine in the paper's sorter hits this path; the generic path
	// below keeps the simulator correct for arbitrary affine mappings.
	unit := g.dvdx == 0 && g.dudy == 0 && (g.dudx == 1 || g.dudx == -1)
	for y := yLo; y < yHi; y++ {
		cy := float64(y) + 0.5
		uRow := g.u0 + (cy-float64(g.y0))*g.dudy + 0.5*g.dudx
		vRow := g.v0 + (cy-float64(g.y0))*g.dvdy + 0.5*g.dvdx
		if unit {
			ty := clampInt(floorInt(vRow), 0, tex.H-1)
			sx := floorInt(uRow)
			step := 1
			if g.dudx < 0 {
				step = -1
			}
			// The tight span loop assumes the whole source run is in
			// bounds; fall through to the generic clamped loop otherwise.
			last := sx + (g.x1-g.x0-1)*step
			if sx >= 0 && sx < tex.W && last >= 0 && last < tex.W {
				d.shadeSpanUnit(fb, tex, y, g.x0, g.x1, ty, sx, step)
				continue
			}
		}
		di := (y*fb.W + g.x0) * Channels
		u, vv := uRow, vRow
		for x := g.x0; x < g.x1; x++ {
			tx := clampInt(floorInt(u), 0, tex.W-1)
			ty := clampInt(floorInt(vv), 0, tex.H-1)
			si := (ty*tex.W + tx) * Channels
			d.texcache.noteFetch(ty*tex.W + tx)
			d.blendTexel(fb.Data[di:di+Channels], tex.Data[si:si+Channels])
			di += Channels
			u += g.dudx
			vv += g.dvdx
		}
	}
}

// shadeSpanUnit shades one row whose source texels advance with unit stride.
// This is the hot loop of the whole simulator: one call covers a full row of
// a sorting-step quad.
func (d *Device[T]) shadeSpanUnit(fb, tex *Texture[T], y, x0, x1, ty, sx, step int) {
	n := x1 - x0
	d.texcache.noteSpan(ty*tex.W+sx, n, step)
	if d.halfTargets {
		d.shadeSpanUnitHalf(fb, tex, y, x0, x1, ty, sx, step)
		return
	}
	// Clamp the source span into the texture, pixel by pixel only at the
	// edges; interior runs without bounds checks on the source row.
	di := (y*fb.W + x0) * Channels
	si := (ty*tex.W + clampInt(sx, 0, tex.W-1)) * Channels
	sstep := step * Channels
	dst := fb.Data
	src := tex.Data
	switch d.blend {
	case BlendMin:
		for i := 0; i < n; i++ {
			if s := src[si]; s < dst[di] {
				dst[di] = s
			}
			if s := src[si+1]; s < dst[di+1] {
				dst[di+1] = s
			}
			if s := src[si+2]; s < dst[di+2] {
				dst[di+2] = s
			}
			if s := src[si+3]; s < dst[di+3] {
				dst[di+3] = s
			}
			di += Channels
			si += sstep
		}
	case BlendMax:
		for i := 0; i < n; i++ {
			if s := src[si]; s > dst[di] {
				dst[di] = s
			}
			if s := src[si+1]; s > dst[di+1] {
				dst[di+1] = s
			}
			if s := src[si+2]; s > dst[di+2] {
				dst[di+2] = s
			}
			if s := src[si+3]; s > dst[di+3] {
				dst[di+3] = s
			}
			di += Channels
			si += sstep
		}
	default: // BlendReplace
		if step == 1 {
			copy(dst[di:di+n*Channels], src[si:si+n*Channels])
			return
		}
		for i := 0; i < n; i++ {
			copy(dst[di:di+Channels], src[si:si+Channels])
			di += Channels
			si += sstep
		}
	}
}

// shadeSpanUnitHalf is shadeSpanUnit with every written value rounded
// through binary16, the 16-bit offscreen-buffer mode (float32 only).
func (d *Device[T]) shadeSpanUnitHalf(fb, tex *Texture[T], y, x0, x1, ty, sx, step int) {
	n := x1 - x0
	di := (y*fb.W + x0) * Channels
	si := (ty*tex.W + clampInt(sx, 0, tex.W-1)) * Channels
	sstep := step * Channels
	dst := fb.Data
	src := tex.Data
	for i := 0; i < n; i++ {
		for c := 0; c < Channels; c++ {
			s := d.halfRound(src[si+c])
			switch d.blend {
			case BlendMin:
				if s < dst[di+c] {
					dst[di+c] = s
				}
			case BlendMax:
				if s > dst[di+c] {
					dst[di+c] = s
				}
			default:
				dst[di+c] = s
			}
		}
		di += Channels
		si += sstep
	}
}

// blendTexel applies the current blend function channel-wise.
func (d *Device[T]) blendTexel(dst, src []T) {
	var q [Channels]T
	if d.halfTargets {
		for c := 0; c < Channels; c++ {
			q[c] = d.halfRound(src[c])
		}
		src = q[:]
	}
	switch d.blend {
	case BlendMin:
		for c := 0; c < Channels; c++ {
			if src[c] < dst[c] {
				dst[c] = src[c]
			}
		}
	case BlendMax:
		for c := 0; c < Channels; c++ {
			if src[c] > dst[c] {
				dst[c] = src[c]
			}
		}
	default:
		copy(dst, src)
	}
}

func floorInt(f float64) int {
	i := int(f)
	if f < 0 && float64(i) != f {
		i--
	}
	return i
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
