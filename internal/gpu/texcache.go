package gpu

// The paper notes that "the performance of texture mapping is enhanced on
// GPUs by using fast texture caches to save the memory bandwidth"
// (Section 4.2.1). This file models that effect: texel fetches are grouped
// into cache lines, and only line misses cost video-memory bandwidth. The
// sorter's accesses are unit-stride spans, so the model is streaming — each
// distinct line touched by a span is one miss — which matches the behaviour
// of a small cache under a working set that never revisits lines within a
// pass.

// TexCacheConfig sizes the modeled texture cache.
type TexCacheConfig struct {
	// LineTexels is the number of texels per cache line. A 64-byte line
	// holds 4 RGBA float32 texels, the default.
	LineTexels int
}

// TexCacheStats reports modeled texture-cache behaviour.
type TexCacheStats struct {
	Fetches         int64 // texel fetches observed
	LineMisses      int64 // cache-line fills
	BytesFromMemory int64 // LineMisses * line bytes
}

// HitRate reports the fraction of fetches served from the cache.
func (s TexCacheStats) HitRate() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return 1 - float64(s.LineMisses)/float64(s.Fetches)
}

// texCache accumulates the modeled stats.
type texCache struct {
	cfg      TexCacheConfig
	stats    TexCacheStats
	lastLine int64
}

// EnableTextureCache turns on texture-cache modeling with the given line
// size (0 selects the 4-texel default). Fetch accounting happens at span
// granularity, so it adds negligible simulation cost.
func (d *Device[T]) EnableTextureCache(cfg TexCacheConfig) {
	if cfg.LineTexels <= 0 {
		cfg.LineTexels = 4
	}
	d.texcache = &texCache{cfg: cfg, lastLine: -1}
}

// TextureCacheStats returns the modeled stats; the zero value is returned
// when the cache model is disabled.
func (d *Device[T]) TextureCacheStats() TexCacheStats {
	if d.texcache == nil {
		return TexCacheStats{}
	}
	return d.texcache.stats
}

// noteSpan records a unit-stride fetch span of n texels starting at linear
// texel index start, stepping by step texels.
func (c *texCache) noteSpan(start, n, step int) {
	if c == nil || n <= 0 {
		return
	}
	c.stats.Fetches += int64(n)
	lt := int64(c.cfg.LineTexels)
	lo := int64(start)
	hi := int64(start + (n-1)*step)
	if hi < lo {
		lo, hi = hi, lo
	}
	first := lo / lt
	last := hi / lt
	lines := last - first + 1
	// The adjacent span of the previous draw often continues on the same
	// line (e.g. the max pass resuming where the min pass mirrored).
	if c.lastLine == first {
		lines--
		first++
	}
	if lines > 0 {
		c.stats.LineMisses += lines
		c.lastLine = last
	}
	lineBytes := lt * Channels * 4
	c.stats.BytesFromMemory = c.stats.LineMisses * int64(lineBytes)
}

// noteFetch records a single (non-span) texel fetch.
func (c *texCache) noteFetch(index int) {
	if c == nil {
		return
	}
	c.stats.Fetches++
	line := int64(index) / int64(c.cfg.LineTexels)
	if line != c.lastLine {
		c.stats.LineMisses++
		c.lastLine = line
	}
	lineBytes := c.cfg.LineTexels * Channels * 4
	c.stats.BytesFromMemory = c.stats.LineMisses * int64(lineBytes)
}
