package gpu

import (
	"gpustream/internal/half"

	"math"
	"testing"
	"testing/quick"
)

func TestNewTexturePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTexture[float32](0, 4) did not panic")
		}
	}()
	NewTexture[float32](0, 4)
}

func TestTextureAtSet(t *testing.T) {
	tex := NewTexture[float32](4, 2)
	tex.Set(3, 1, 2, 7.5)
	if got := tex.At(3, 1, 2); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Layout check: texel (3,1) channel 2 is index ((1*4)+3)*4+2 = 30.
	if tex.Data[30] != 7.5 {
		t.Fatalf("unexpected layout, Data[30] = %v", tex.Data[30])
	}
	if got := tex.At(0, 0, 0); got != 0 {
		t.Fatalf("untouched texel = %v, want 0", got)
	}
}

func TestTextureBytesTexels(t *testing.T) {
	tex := NewTexture[float32](8, 4)
	if tex.Texels() != 32 {
		t.Fatalf("Texels = %d", tex.Texels())
	}
	if tex.Bytes() != 32*4*4 {
		t.Fatalf("Bytes = %d", tex.Bytes())
	}
}

func TestTextureCloneIndependent(t *testing.T) {
	tex := NewTexture[float32](2, 2)
	tex.Fill(3)
	c := tex.Clone()
	c.Set(0, 0, 0, 9)
	if tex.At(0, 0, 0) != 3 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCopyFromDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched dims did not panic")
		}
	}()
	NewTexture[float32](2, 2).CopyFrom(NewTexture[float32](4, 4))
}

func TestPackUnpackRoundTrip(t *testing.T) {
	data := make([]float32, 50)
	for i := range data {
		data[i] = float32(i) * 1.5
	}
	tex := PackChannels[float32](data, 4, 4, float32(math.Inf(1)))
	var got []float32
	for c := 0; c < Channels; c++ {
		got = append(got, tex.UnpackChannel(c)...)
	}
	for i, v := range data {
		if got[i] != v {
			t.Fatalf("round trip mismatch at %d: got %v want %v", i, got[i], v)
		}
	}
	for i := len(data); i < len(got); i++ {
		if !math.IsInf(float64(got[i]), 1) {
			t.Fatalf("padding at %d = %v, want +Inf", i, got[i])
		}
	}
}

func TestPackChannelsPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overfull PackChannels did not panic")
		}
	}()
	PackChannels[float32](make([]float32, 17), 2, 2, 0)
}

func TestLoadChannel(t *testing.T) {
	tex := NewTexture[float32](2, 2)
	tex.LoadChannel(3, []float32{1, 2, 3, 4})
	got := tex.UnpackChannel(3)
	for i, want := range []float32{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("channel 3 = %v", got)
		}
	}
	if tex.UnpackChannel(0)[0] != 0 {
		t.Fatal("LoadChannel leaked into other channels")
	}
}

func TestLoadChannelPanicsWhenTooLong(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized LoadChannel did not panic")
		}
	}()
	NewTexture[float32](2, 2).LoadChannel(0, make([]float32, 5))
}

func TestTextureDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{0, 1, 1}, {1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2},
		{5, 4, 2}, {8, 4, 2}, {9, 4, 4}, {16, 4, 4}, {1 << 20, 1 << 10, 1 << 10},
	}
	for _, c := range cases {
		w, h := TextureDims(c.n)
		if w != c.w || h != c.h {
			t.Fatalf("TextureDims(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

func TestTextureDimsProperties(t *testing.T) {
	prop := func(raw uint32) bool {
		n := int(raw % 5000000)
		w, h := TextureDims(n)
		if w*h < n && n > 0 {
			return false
		}
		// Powers of two.
		return w&(w-1) == 0 && h&(h-1) == 0 && w*h < 4*maxInt(n, 1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// quantHalf mirrors the device's 16-bit rounding for test expectations.
func quantHalf(v float32) float32 {
	// Inline import avoidance: the device's rounding is half.FromFloat32;
	// duplicate via the public package.
	return half.FromFloat32(v).ToFloat32()
}
