package wire

import (
	"errors"
	"math"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	b := AppendHeader(nil, FamilyQuantile, TagUint64)
	if len(b) != HeaderSize {
		t.Fatalf("header is %d bytes, want %d", len(b), HeaderSize)
	}
	fam, tag, err := ReadHeader(b)
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if fam != FamilyQuantile || tag != TagUint64 {
		t.Fatalf("got (%v, %v)", fam, tag)
	}

	r := NewReader(b)
	if err := r.Header(FamilyQuantile, TagUint64); err != nil {
		t.Fatalf("Reader.Header: %v", err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestHeaderErrors(t *testing.T) {
	good := AppendHeader(nil, FamilyFrequency, TagFloat32)

	if _, _, err := ReadHeader(good[:HeaderSize-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, _, err := ReadHeader(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	future := append([]byte(nil), good...)
	future[4] = 99
	if _, _, err := ReadHeader(future); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v", err)
	}
	if err := NewReader(good).Header(FamilyFrequency, TagUint64); !errors.Is(err, ErrValueType) {
		t.Fatalf("tag mismatch: %v", err)
	}
	if err := NewReader(good).Header(FamilyQuantile, TagFloat32); !errors.Is(err, ErrFamily) {
		t.Fatalf("family mismatch: %v", err)
	}
}

func TestPrimitiveRoundTrip(t *testing.T) {
	b := AppendU8(nil, 7)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendI64(b, -42)
	b = AppendF64(b, -0.125)

	r := NewReader(b)
	if v, err := r.U8(); err != nil || v != 7 {
		t.Fatalf("U8 = %d, %v", v, err)
	}
	if v, err := r.U32(); err != nil || v != 0xDEADBEEF {
		t.Fatalf("U32 = %x, %v", v, err)
	}
	if v, err := r.I64(); err != nil || v != -42 {
		t.Fatalf("I64 = %d, %v", v, err)
	}
	if v, err := r.F64(); err != nil || v != -0.125 {
		t.Fatalf("F64 = %v, %v", v, err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if _, err := r.U8(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("read past end: %v", err)
	}
}

func TestValueRoundTripBitExact(t *testing.T) {
	check := func(t *testing.T, enc []byte, wantSize int) {
		t.Helper()
		if len(enc) != wantSize {
			t.Fatalf("encoded %d bytes, want %d", len(enc), wantSize)
		}
	}
	for _, v := range []float32{0, float32(math.Copysign(0, -1)), -1.5, 3.4e38, -3.4e38, float32(math.Inf(1)), float32(math.Inf(-1))} {
		enc := AppendValue(nil, v)
		check(t, enc, 4)
		got, err := ReadValue[float32](NewReader(enc))
		if err != nil || math.Float32bits(got) != math.Float32bits(v) {
			t.Fatalf("float32 %v -> %v, %v", v, got, err)
		}
	}
	for _, v := range []uint64{0, 1, math.MaxUint64, 1 << 63} {
		enc := AppendValue(nil, v)
		check(t, enc, 8)
		got, err := ReadValue[uint64](NewReader(enc))
		if err != nil || got != v {
			t.Fatalf("uint64 %d -> %d, %v", v, got, err)
		}
	}
	for _, v := range []int32{math.MinInt32, -1, 0, math.MaxInt32} {
		enc := AppendValue(nil, v)
		check(t, enc, 4)
		got, err := ReadValue[int32](NewReader(enc))
		if err != nil || got != v {
			t.Fatalf("int32 %d -> %d, %v", v, got, err)
		}
	}
}

func TestCountRejectsOverflowedLength(t *testing.T) {
	b := AppendU32(nil, math.MaxUint32)
	if _, err := NewReader(b).Count(24); !errors.Is(err, ErrTruncated) {
		t.Fatalf("overflowed count: %v", err)
	}
	// A zero count is fine with no remaining bytes.
	if c, err := NewReader(AppendU32(nil, 0)).Count(24); err != nil || c != 0 {
		t.Fatalf("zero count: %d, %v", c, err)
	}
}

func TestTagOf(t *testing.T) {
	if got := TagOf[float32](); got != TagFloat32 {
		t.Fatalf("float32 tag %v", got)
	}
	if got := TagOf[uint64](); got != TagUint64 {
		t.Fatalf("uint64 tag %v", got)
	}
	if got := TagOf[int64](); got != TagInt64 {
		t.Fatalf("int64 tag %v", got)
	}
	if ValueSize[float64]() != 8 || ValueSize[uint32]() != 4 {
		t.Fatal("value sizes")
	}
}
