// Package wire defines the versioned binary snapshot format shared by every
// estimator family: a fixed 8-byte header (magic, format version, value-type
// tag, family tag) followed by a family-specific body of little-endian
// fixed-width fields. The format is the cross-process contract of the
// aggregation tree — a snapshot marshaled by one process is unmarshaled and
// merged by another — so it is endian-stable by construction (explicit
// little-endian encoding, never host order) and decoding is hardened against
// hostile input: every length field is validated against the remaining
// buffer before any allocation, and every failure is a wrapped sentinel
// error, never a panic. DESIGN.md section 12 specifies the layout and the
// versioning policy.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"

	"gpustream/internal/sorter"
)

// magic identifies a gpustream snapshot blob.
var magic = [4]byte{'G', 'S', 'N', 'P'}

// Version is the current format version. Decoders reject any other value:
// the format only changes by bumping it, and old readers must fail cleanly
// on new blobs rather than misparse them.
const Version = 1

// HeaderSize is the fixed header length: magic (4) + version (2) +
// value-type tag (1) + family tag (1).
const HeaderSize = 8

// Family tags a snapshot body with the estimator family that produced it.
type Family uint8

const (
	// FamilyFrequency is a whole-stream lossy-counting summary
	// (frequency.Snapshot), also produced by sharded frequency ingestion.
	FamilyFrequency Family = 1
	// FamilyQuantile is a whole-stream merged GK summary
	// (quantile.Snapshot), also produced by sharded quantile ingestion.
	FamilyQuantile Family = 2
	// FamilyWindowFrequency is a sliding-window pane-ring histogram
	// (window.FrequencySnapshot).
	FamilyWindowFrequency Family = 3
	// FamilyWindowQuantile is a sliding-window pane-ring of GK summaries
	// (window.QuantileSnapshot).
	FamilyWindowQuantile Family = 4
	// FamilyFrugal is a bank of frugal-streaming quantile trackers
	// (frugal.Snapshot), one or two words of state per target quantile.
	FamilyFrugal Family = 5
	// FamilyKeyed is a keyed estimation container (keyed.Snapshot): pooled
	// per-key frugal trackers, promoted per-key GK summaries, and the
	// lossy-counting key oracle, with a second value-type tag for the keys.
	FamilyKeyed Family = 6
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyFrequency:
		return "frequency"
	case FamilyQuantile:
		return "quantile"
	case FamilyWindowFrequency:
		return "sliding-frequency"
	case FamilyWindowQuantile:
		return "sliding-quantile"
	case FamilyFrugal:
		return "frugal"
	case FamilyKeyed:
		return "keyed"
	}
	return fmt.Sprintf("Family(%d)", uint8(f))
}

// Tag identifies the sorter.Value instantiation of a snapshot's values.
type Tag uint8

const (
	TagFloat32 Tag = 1
	TagFloat64 Tag = 2
	TagUint32  Tag = 3
	TagUint64  Tag = 4
	TagInt32   Tag = 5
	TagInt64   Tag = 6
)

// String implements fmt.Stringer.
func (t Tag) String() string {
	switch t {
	case TagFloat32:
		return "float32"
	case TagFloat64:
		return "float64"
	case TagUint32:
		return "uint32"
	case TagUint64:
		return "uint64"
	case TagInt32:
		return "int32"
	case TagInt64:
		return "int64"
	}
	return fmt.Sprintf("Tag(%d)", uint8(t))
}

// Decoding sentinels. Every decode failure wraps exactly one of these, so
// callers can classify with errors.Is.
var (
	// ErrBadMagic means the buffer does not start with a snapshot header.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion means the header carries a format version this build does
	// not speak.
	ErrVersion = errors.New("wire: unsupported format version")
	// ErrValueType means the snapshot's value-type tag does not match the
	// requested instantiation.
	ErrValueType = errors.New("wire: value-type tag mismatch")
	// ErrFamily means the snapshot's family tag does not match the decoder
	// (or is unknown entirely).
	ErrFamily = errors.New("wire: unexpected family tag")
	// ErrTruncated means the buffer ended before the fields its header and
	// length fields promise — including overflowed length fields, which are
	// rejected before any allocation.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrCorrupt means the buffer parsed but violates a structural
	// invariant: trailing bytes, unsorted entries, or impossible rank
	// bounds.
	ErrCorrupt = errors.New("wire: corrupt input")
)

// TagOf reports the value-type tag of the instantiation T.
func TagOf[T sorter.Value]() Tag {
	var z T
	switch reflect.ValueOf(&z).Elem().Kind() {
	case reflect.Float32:
		return TagFloat32
	case reflect.Float64:
		return TagFloat64
	case reflect.Uint32:
		return TagUint32
	case reflect.Uint64:
		return TagUint64
	case reflect.Int32:
		return TagInt32
	default: // Int64
		return TagInt64
	}
}

// ValueSize reports the encoded width of one T value in bytes: values are
// stored as their order-preserving integer key (sorter.OrderedKey) at T's
// native key width, so 32-bit types cost 4 bytes and 64-bit types 8.
func ValueSize[T sorter.Value]() int { return sorter.KeyBits[T]() / 8 }

// AppendHeader appends the fixed snapshot header for the given family and
// value type.
func AppendHeader(b []byte, fam Family, tag Tag) []byte {
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	return append(b, byte(tag), byte(fam))
}

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends a little-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendI64 appends a little-endian int64 (two's complement).
func AppendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// AppendF64 appends a little-endian IEEE-754 float64.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendValue appends v as its order-preserving integer key at T's native
// width. The key mapping is a bijection, so decoding recovers v bit-exactly.
func AppendValue[T sorter.Value](b []byte, v T) []byte {
	k := sorter.OrderedKey(v)
	if sorter.KeyBits[T]() == 32 {
		return binary.LittleEndian.AppendUint32(b, uint32(k))
	}
	return binary.LittleEndian.AppendUint64(b, k)
}

// ReadHeader validates the magic and version of data and returns its family
// and value-type tags, so a dispatcher can route the buffer to the right
// family decoder before committing to a full parse.
func ReadHeader(data []byte) (Family, Tag, error) {
	if len(data) < HeaderSize {
		return 0, 0, fmt.Errorf("wire: %d-byte buffer shorter than %d-byte header: %w", len(data), HeaderSize, ErrTruncated)
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return 0, 0, fmt.Errorf("wire: magic %q: %w", data[:4], ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return 0, 0, fmt.Errorf("wire: format version %d, this build speaks %d: %w", v, Version, ErrVersion)
	}
	return Family(data[7]), Tag(data[6]), nil
}

// Reader decodes a snapshot buffer with bounds checking on every read. It
// never panics and never allocates based on an unvalidated length.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Remaining reports the undecoded bytes left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// take consumes n bytes, or fails with ErrTruncated.
func (r *Reader) take(n int) ([]byte, error) {
	if r.Remaining() < n {
		return nil, fmt.Errorf("wire: need %d bytes at offset %d, have %d: %w", n, r.off, r.Remaining(), ErrTruncated)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Header consumes and validates the fixed header, requiring the given
// family and value type.
func (r *Reader) Header(fam Family, tag Tag) error {
	f, tg, err := ReadHeader(r.buf[r.off:])
	if err != nil {
		return err
	}
	r.off += HeaderSize
	// Both mismatch errors spell out the raw tag byte: when debugging a
	// corrupt (or future-version) snapshot, "tag byte 0x07" distinguishes a
	// flipped bit from a family this build simply does not know yet.
	if tg != tag {
		return fmt.Errorf("wire: snapshot carries %v values (tag byte 0x%02X), want %v: %w", tg, uint8(tg), tag, ErrValueType)
	}
	if f != fam {
		return fmt.Errorf("wire: snapshot family %v (tag byte 0x%02X), want %v: %w", f, uint8(f), fam, ErrFamily)
	}
	return nil
}

// U8 reads one byte.
func (r *Reader) U8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// I64 reads a little-endian int64.
func (r *Reader) I64() (int64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

// F64 reads a little-endian IEEE-754 float64.
func (r *Reader) F64() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// Count reads a uint32 element count and verifies that at least
// count*elemSize bytes remain, so an overflowed or hostile length field
// fails here — before the caller sizes any allocation by it.
func (r *Reader) Count(elemSize int) (int, error) {
	c, err := r.U32()
	if err != nil {
		return 0, err
	}
	if int64(c)*int64(elemSize) > int64(r.Remaining()) {
		return 0, fmt.Errorf("wire: length field %d (%d bytes each) exceeds remaining %d bytes: %w", c, elemSize, r.Remaining(), ErrTruncated)
	}
	return int(c), nil
}

// Bytes consumes n bytes and returns them, aliasing the underlying buffer —
// the raw-slab accessor nested encodings (a family blob embedded inside
// another family's body) decode through. The caller must have validated n
// via Count or an explicit length check first.
func (r *Reader) Bytes(n int) ([]byte, error) { return r.take(n) }

// Finish verifies the buffer was consumed exactly: trailing bytes mean the
// blob was not produced by this encoder and the parse cannot be trusted.
// Exact consumption also keeps the format canonical — decode then re-encode
// is the identity on bytes.
func (r *Reader) Finish() error {
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("wire: %d trailing bytes after snapshot body: %w", n, ErrCorrupt)
	}
	return nil
}

// ReadValue reads one T encoded by AppendValue.
func ReadValue[T sorter.Value](r *Reader) (T, error) {
	var z T
	if sorter.KeyBits[T]() == 32 {
		k, err := r.U32()
		if err != nil {
			return z, err
		}
		return sorter.FromOrderedKey[T](uint64(k)), nil
	}
	b, err := r.take(8)
	if err != nil {
		return z, err
	}
	return sorter.FromOrderedKey[T](binary.LittleEndian.Uint64(b)), nil
}

// Corruptf wraps ErrCorrupt with context; family decoders use it to report
// structural-invariant violations (unsorted entries, impossible ranks).
func Corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCorrupt)...)
}
