package gpustream

// Benchmark harness: one family per table/figure in the paper's evaluation
// (Section 4.5 and Section 5), plus the design-choice ablations listed in
// DESIGN.md. Each figure bench measures real host wall time of the simulated
// pipeline and additionally reports the perfmodel's GeForce-6800/Pentium-IV
// time as a custom metric (model-ms), which is what reproduces the paper's
// absolute series; cmd/figures prints the full-scale tables.
//
// Sizes are kept moderate so `go test -bench=.` finishes in minutes; the
// cmd/figures tool sweeps to the paper's full 8M / 100M scales.

import (
	"fmt"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/perfmodel"
	"gpustream/internal/sortnet"
	"gpustream/internal/stream"
	"gpustream/internal/summary"
)

var benchSizes = []int{1 << 14, 1 << 16, 1 << 18}

// BenchmarkFig3Sort reproduces Figure 3: sorting time versus input size for
// the paper's GPU PBSN sorter, the prior GPU bitonic sorter, and the two CPU
// quicksort builds.
func BenchmarkFig3Sort(b *testing.B) {
	model := perfmodel.Default()
	for _, n := range benchSizes {
		data := stream.Uniform(n, uint64(n))
		b.Run(fmt.Sprintf("gpu-pbsn/n=%d", n), func(b *testing.B) {
			s := gpusort.NewSorter[float32]()
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				s.Sort(buf)
			}
			b.ReportMetric(float64(model.PBSNSortTime(n).Total().Microseconds())/1000, "model-ms")
		})
		b.Run(fmt.Sprintf("gpu-bitonic/n=%d", n), func(b *testing.B) {
			s := gpusort.NewBitonicSorter[float32]()
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				s.Sort(buf)
			}
			b.ReportMetric(float64(model.BitonicSortTime(n).Total().Microseconds())/1000, "model-ms")
		})
		b.Run(fmt.Sprintf("cpu-intel-ht/n=%d", n), func(b *testing.B) {
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				cpusort.ParallelQuicksort(buf, 2)
			}
			b.ReportMetric(float64(model.QuicksortTime(n, perfmodel.IntelHT).Microseconds())/1000, "model-ms")
		})
		b.Run(fmt.Sprintf("cpu-msvc/n=%d", n), func(b *testing.B) {
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				cpusort.Quicksort(buf)
			}
			b.ReportMetric(float64(model.QuicksortTime(n, perfmodel.MSVC).Microseconds())/1000, "model-ms")
		})
	}
}

// BenchmarkFig4Breakdown reproduces Figure 4: the GPU sort decomposed into
// computation and CPU<->GPU data-transfer time (reported as model metrics
// from the exact simulator counters of a real run).
func BenchmarkFig4Breakdown(b *testing.B) {
	model := perfmodel.Default()
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := stream.Uniform(n, uint64(n))
			s := gpusort.NewSorter[float32]()
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				s.Sort(buf)
			}
			b.StopTimer()
			st := s.LastStats()
			bd := model.GPUSortFromStats(st.GPU, st.MergeCmps)
			b.ReportMetric(float64(bd.Compute.Microseconds())/1000, "model-compute-ms")
			b.ReportMetric(float64(bd.Transfer.Microseconds())/1000, "model-transfer-ms")
			b.ReportMetric(float64(bd.Merge.Microseconds())/1000, "model-merge-ms")
		})
	}
}

// benchPipeline drives a frequency or quantile pipeline over a fixed stream.
func benchPipeline(b *testing.B, backend Backend, run func(eng *Engine[float32], data []float32) (sortShare float64)) {
	data := stream.UniformInts(1<<18, 1<<20, 7)
	eng := New(backend)
	b.ResetTimer()
	var share float64
	for i := 0; i < b.N; i++ {
		share = run(eng, data)
	}
	b.ReportMetric(share*100, "sort-%")
}

// BenchmarkFig5Frequency reproduces Figure 5: frequency-estimation pipeline
// time, GPU versus CPU backend, across epsilon values.
func BenchmarkFig5Frequency(b *testing.B) {
	for _, eps := range []float64{1e-2, 1e-3, 1e-4} {
		for _, backend := range []Backend{BackendGPU, BackendCPU} {
			b.Run(fmt.Sprintf("%v/eps=%g", backend, eps), func(b *testing.B) {
				benchPipeline(b, backend, func(eng *Engine[float32], data []float32) float64 {
					est := eng.NewFrequencyEstimator(eps)
					est.ProcessSlice(data)
					est.Flush()
					tm := est.Stats()
					if tm.Total() == 0 {
						return 0
					}
					return float64(tm.Sort) / float64(tm.Total())
				})
			})
		}
	}
}

// BenchmarkFig6SummaryOps reproduces Figure 6: the share of pipeline time
// spent in each summary operation (sort / merge / compress).
func BenchmarkFig6SummaryOps(b *testing.B) {
	for _, eps := range []float64{1e-2, 1e-3, 1e-4} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			data := stream.UniformInts(1<<18, 1<<20, 8)
			eng := New(BackendCPU)
			b.ResetTimer()
			var sortP, mergeP, compP float64
			for i := 0; i < b.N; i++ {
				est := eng.NewFrequencyEstimator(eps)
				est.ProcessSlice(data)
				est.Flush()
				t := est.Stats()
				tot := float64(t.Total())
				if tot > 0 {
					sortP = 100 * float64(t.Sort) / tot
					mergeP = 100 * float64(t.Merge) / tot
					compP = 100 * float64(t.Compress) / tot
				}
			}
			b.ReportMetric(sortP, "sort-%")
			b.ReportMetric(mergeP, "merge-%")
			b.ReportMetric(compP, "compress-%")
		})
	}
}

// BenchmarkFig7Quantile reproduces Figure 7: quantile-estimation pipeline
// time, GPU versus CPU backend, across epsilon values.
func BenchmarkFig7Quantile(b *testing.B) {
	for _, eps := range []float64{1e-2, 1e-3, 1e-4} {
		for _, backend := range []Backend{BackendGPU, BackendCPU} {
			b.Run(fmt.Sprintf("%v/eps=%g", backend, eps), func(b *testing.B) {
				benchPipeline(b, backend, func(eng *Engine[float32], data []float32) float64 {
					est := eng.NewQuantileEstimator(eps, int64(len(data)))
					est.ProcessSlice(data)
					_ = est.Query(0.5)
					tm := est.Stats()
					if tm.Total() == 0 {
						return 0
					}
					return float64(tm.Sort) / float64(tm.Total())
				})
			})
		}
	}
}

// BenchmarkFig8Sliding reproduces the Section 5.3 sliding-window experiment:
// pipeline time for frequency and quantile queries across window sizes.
func BenchmarkFig8Sliding(b *testing.B) {
	data := stream.Zipf(1<<18, 1.1, 1<<16, 9)
	for _, w := range []int{1 << 12, 1 << 14, 1 << 16} {
		for _, backend := range []Backend{BackendGPU, BackendCPU} {
			b.Run(fmt.Sprintf("freq/%v/w=%d", backend, w), func(b *testing.B) {
				eng := New(backend)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					est := eng.NewSlidingFrequency(0.01, w)
					est.ProcessSlice(data)
					_ = est.Query(0.05)
				}
			})
			b.Run(fmt.Sprintf("quant/%v/w=%d", backend, w), func(b *testing.B) {
				eng := New(backend)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					est := eng.NewSlidingQuantile(0.01, w)
					est.ProcessSlice(data)
					_ = est.Query(0.5)
				}
			})
		}
	}
}

// BenchmarkParallelQuantileIngest compares serial ProcessSlice against
// K-way sharded ingestion of the same stream, per backend. On multi-core
// hosts the sharded path wins at K >= 4 because per-window sorting — 70-95%
// of pipeline time — runs concurrently; the ns/op ratio is the measured
// speedup.
func BenchmarkParallelQuantileIngest(b *testing.B) {
	const eps = 1e-3
	for _, backend := range []Backend{BackendCPU, BackendGPU} {
		n := 1 << 20
		if backend == BackendGPU {
			n = 1 << 18 // the simulator is orders of magnitude slower
		}
		data := stream.UniformInts(n, 1<<20, 21)
		eng := New(backend)
		b.Run(fmt.Sprintf("serial/%v/n=%d", backend, n), func(b *testing.B) {
			b.SetBytes(int64(n) * 4)
			for i := 0; i < b.N; i++ {
				est := eng.NewQuantileEstimator(eps, int64(n))
				est.ProcessSlice(data)
				_ = est.Query(0.5)
			}
		})
		for _, k := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("sharded/%v/n=%d/k=%d", backend, n, k), func(b *testing.B) {
				b.SetBytes(int64(n) * 4)
				for i := 0; i < b.N; i++ {
					est := eng.NewParallelQuantileEstimator(eps, int64(n), k)
					est.ProcessSlice(data)
					_ = est.Query(0.5)
					est.Close()
				}
			})
		}
	}
}

// BenchmarkParallelFrequencyIngest is the frequency-pipeline counterpart of
// BenchmarkParallelQuantileIngest.
func BenchmarkParallelFrequencyIngest(b *testing.B) {
	const eps = 1e-3
	for _, backend := range []Backend{BackendCPU, BackendGPU} {
		n := 1 << 20
		if backend == BackendGPU {
			n = 1 << 18
		}
		data := stream.UniformInts(n, 1<<20, 22)
		eng := New(backend)
		b.Run(fmt.Sprintf("serial/%v/n=%d", backend, n), func(b *testing.B) {
			b.SetBytes(int64(n) * 4)
			for i := 0; i < b.N; i++ {
				est := eng.NewFrequencyEstimator(eps)
				est.ProcessSlice(data)
				_ = est.Query(0.01)
			}
		})
		for _, k := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("sharded/%v/n=%d/k=%d", backend, n, k), func(b *testing.B) {
				b.SetBytes(int64(n) * 4)
				for i := 0; i < b.N; i++ {
					est := eng.NewParallelFrequencyEstimator(eps, k)
					est.ProcessSlice(data)
					_ = est.Query(0.01)
					est.Close()
				}
			})
		}
	}
}

// BenchmarkAblationChannels isolates the paper's 4-channel vector packing:
// the same PBSN sort with all data in one channel (no vector parallelism,
// 4x the texels) versus the 4-channel configuration.
func BenchmarkAblationChannels(b *testing.B) {
	n := 1 << 16
	data := stream.Uniform(n, 10)
	for _, ch := range []int{1, 4} {
		b.Run(fmt.Sprintf("channels=%d", ch), func(b *testing.B) {
			s := &gpusort.Sorter[float32]{ChannelsUsed: ch}
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				s.Sort(buf)
			}
			b.StopTimer()
			b.ReportMetric(float64(s.LastStats().GPU.BlendOps), "blend-ops")
		})
	}
}

// BenchmarkAblationNetworks compares the PBSN and bitonic comparator
// schedules executed identically on the CPU, isolating the network choice
// from per-operation GPU costs.
func BenchmarkAblationNetworks(b *testing.B) {
	n := 1 << 14
	data := stream.Uniform(n, 11)
	nets := map[string]*sortnet.Network{
		"pbsn":    sortnet.PBSN(n),
		"bitonic": sortnet.Bitonic(n),
	}
	for name, net := range nets {
		b.Run(name, func(b *testing.B) {
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				sortnet.Apply(net, buf)
			}
			b.ReportMetric(float64(net.Comparators()), "comparators")
		})
	}
}

// BenchmarkAblationInsertion compares window-based summary construction
// against single-element GK insertion (the paper's Section 3.2 claim that
// window-based algorithms perform better in practice).
func BenchmarkAblationInsertion(b *testing.B) {
	data := stream.Uniform(1<<17, 12)
	const eps = 0.001
	b.Run("window-based", func(b *testing.B) {
		eng := New(BackendCPU)
		for i := 0; i < b.N; i++ {
			est := eng.NewQuantileEstimator(eps, int64(len(data)))
			est.ProcessSlice(data)
			_ = est.Query(0.5)
		}
	})
	b.Run("single-element", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := summary.NewGK[float32](eps)
			for _, v := range data {
				g.Insert(v)
			}
			_ = g.Query(0.5)
		}
	})
}

// BenchmarkAblationCompress sweeps the GK compress interval, trading summary
// memory for insert throughput.
func BenchmarkAblationCompress(b *testing.B) {
	data := stream.Uniform(1<<16, 13)
	for _, every := range []int64{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				g := summary.NewGKCompressEvery[float32](0.01, every)
				for _, v := range data {
					g.Insert(v)
				}
				size = g.Size()
			}
			b.ReportMetric(float64(size), "tuples")
		})
	}
}

// BenchmarkAblationRowBlocks compares the paper's full-height row-block
// quads (Figure 2 optimization) against naive per-row quads; fragments are
// identical, draw-call submissions differ.
func BenchmarkAblationRowBlocks(b *testing.B) {
	// Use the gpusort-level primitives directly on one texture shape.
	benchRowBlocks(b)
}

// BenchmarkAblationBatchSort quantifies the paper's Section 4.1 buffering
// of four windows into the RGBA channels: one GPU invocation for four
// windows versus four invocations, same total data.
func BenchmarkAblationBatchSort(b *testing.B) {
	const w = 1 << 14
	model := perfmodel.Default()
	mk := func() [][]float32 {
		out := make([][]float32, 4)
		for i := range out {
			out[i] = stream.Uniform(w, uint64(i+1))
		}
		return out
	}
	b.Run("batched-4-windows", func(b *testing.B) {
		s := gpusort.NewSorter[float32]()
		for i := 0; i < b.N; i++ {
			s.SortBatch(mk())
		}
		// One setup per 4 windows.
		b.ReportMetric(float64(model.GPU.SetupOverhead.Microseconds())/1000/4, "model-setup-ms/window")
	})
	b.Run("separate-windows", func(b *testing.B) {
		s := gpusort.NewSorter[float32]()
		for i := 0; i < b.N; i++ {
			for _, win := range mk() {
				s.Sort(win)
			}
		}
		b.ReportMetric(float64(model.GPU.SetupOverhead.Microseconds())/1000, "model-setup-ms/window")
	})
}

// benchStreamOf builds a rank-shuffled stream at type T so every
// instantiation sorts the same permutation (comparisons and swaps agree
// across types; only element width differs).
func benchStreamOf[T Value](n int, seed uint64) []T {
	r := stream.NewRNG(seed)
	out := make([]T, n)
	for i := range out {
		out[i] = T(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func benchSortType[T Value](b *testing.B, backend Backend, n int, elemSize int64) {
	data := benchStreamOf[T](n, uint64(n))
	eng := NewOf[T](backend)
	buf := make([]T, n)
	b.SetBytes(int64(n) * elemSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, data)
		eng.Sort(buf)
	}
}

// BenchmarkSortTypes compares float32 against the uint64 and float64
// instantiations of every sorting backend at a fixed size: same element
// count, same permutation, different element widths. Simulated GPU work is
// identical across types (32-bit texels either way); host throughput shows
// the real cost of the wider elements.
func BenchmarkSortTypes(b *testing.B) {
	const n = 1 << 16
	for _, backend := range []Backend{BackendGPU, BackendGPUBitonic, BackendCPU, BackendCPUParallel} {
		b.Run(backend.String()+"/float32", func(b *testing.B) { benchSortType[float32](b, backend, n, 4) })
		b.Run(backend.String()+"/uint64", func(b *testing.B) { benchSortType[uint64](b, backend, n, 8) })
		b.Run(backend.String()+"/float64", func(b *testing.B) { benchSortType[float64](b, backend, n, 8) })
	}
}

func benchPipelineType[T Value](b *testing.B, backend Backend, n int, elemSize int64) {
	data := benchStreamOf[T](n, uint64(n)+1)
	b.SetBytes(int64(n) * elemSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := NewOf[T](backend).NewQuantileEstimator(0.01, int64(n))
		est.ProcessSlice(data)
		_ = est.Query(0.5)
		est.Close()
	}
}

// BenchmarkPipelineTypes measures end-to-end quantile-pipeline ingest
// (window sort, summary build, merge, prune) per element type and backend.
func BenchmarkPipelineTypes(b *testing.B) {
	const n = 1 << 16
	for _, backend := range []Backend{BackendGPU, BackendCPU} {
		b.Run(backend.String()+"/float32", func(b *testing.B) { benchPipelineType[float32](b, backend, n, 4) })
		b.Run(backend.String()+"/uint64", func(b *testing.B) { benchPipelineType[uint64](b, backend, n, 8) })
		b.Run(backend.String()+"/float64", func(b *testing.B) { benchPipelineType[float64](b, backend, n, 8) })
	}
}

// BenchmarkPipelineSyncVsAsync measures end-to-end frequency and quantile
// ingest with synchronous emit versus the staged asynchronous executor, and
// reports the executor's measured overlap and ingest stall so the two
// schedules can be compared directly (paper Section 4.2: the GPU sorts
// window i while the CPU merges window i-1).
func BenchmarkPipelineSyncVsAsync(b *testing.B) {
	const n = 1 << 18
	data := stream.UniformInts(n, 1<<20, 11)
	for _, backend := range []Backend{BackendGPU, BackendCPU} {
		for _, mode := range []struct {
			name  string
			eopts []EstimatorOption
		}{
			{name: "sync"},
			{name: "async", eopts: []EstimatorOption{WithAsyncIngestion()}},
		} {
			b.Run(fmt.Sprintf("frequency/%v/%s", backend, mode.name), func(b *testing.B) {
				eng := New(backend)
				b.SetBytes(n * 4)
				b.ResetTimer()
				var st Stats
				for i := 0; i < b.N; i++ {
					est := eng.NewFrequencyEstimator(1e-4, mode.eopts...)
					est.ProcessSlice(data)
					est.Flush()
					st = est.Stats()
					est.Close()
				}
				b.ReportMetric(float64(st.Overlap.Microseconds())/1000, "overlap-ms")
				b.ReportMetric(float64(st.Stall.Microseconds())/1000, "stall-ms")
			})
			b.Run(fmt.Sprintf("quantile/%v/%s", backend, mode.name), func(b *testing.B) {
				eng := New(backend)
				b.SetBytes(n * 4)
				b.ResetTimer()
				var st Stats
				for i := 0; i < b.N; i++ {
					est := eng.NewQuantileEstimator(1e-3, n, mode.eopts...)
					est.ProcessSlice(data)
					_ = est.Query(0.5)
					st = est.Stats()
					est.Close()
				}
				b.ReportMetric(float64(st.Overlap.Microseconds())/1000, "overlap-ms")
				b.ReportMetric(float64(st.Stall.Microseconds())/1000, "stall-ms")
			})
		}
	}
}
