package gpustream

import (
	"math"
	"sort"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

func TestAllBackendsSortIdentically(t *testing.T) {
	data := stream.Zipf(20000, 1.1, 1000, 1)
	want := append([]float32(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, b := range []Backend{BackendGPU, BackendGPUBitonic, BackendCPU, BackendCPUParallel} {
		eng := New(b)
		got := append([]float32(nil), data...)
		eng.Sort(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: mismatch at %d", b, i)
			}
		}
		if eng.Backend() != b {
			t.Fatalf("Backend() = %v, want %v", eng.Backend(), b)
		}
		if eng.Sorter() == nil {
			t.Fatalf("%v: nil sorter", b)
		}
	}
}

func TestBackendStrings(t *testing.T) {
	cases := map[Backend]string{
		BackendGPU:         "gpu",
		BackendGPUBitonic:  "gpu-bitonic",
		BackendCPU:         "cpu",
		BackendCPUParallel: "cpu-parallel",
	}
	for b, want := range cases {
		if b.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(b), b.String(), want)
		}
	}
	if Backend(99).String() == "" {
		t.Fatal("unknown backend should still stringify")
	}
}

func TestNewPanicsOnUnknownBackend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Backend(42))
}

func TestLastSortBreakdown(t *testing.T) {
	eng := New(BackendGPU)
	eng.Sort(stream.Uniform(10000, 2))
	b, ok := eng.LastSortBreakdown()
	if !ok {
		t.Fatal("GPU backend must expose a breakdown")
	}
	if b.Compute <= 0 || b.Transfer <= 0 || b.Setup <= 0 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.Total() != b.Compute+b.Transfer+b.Setup+b.Merge {
		t.Fatal("Total mismatch")
	}

	cpu := New(BackendCPU)
	cpu.Sort(stream.Uniform(100, 3))
	if _, ok := cpu.LastSortBreakdown(); ok {
		t.Fatal("CPU backend should not expose a GPU breakdown")
	}

	bit := New(BackendGPUBitonic)
	bit.Sort(stream.Uniform(4096, 4))
	bb, ok := bit.LastSortBreakdown()
	if !ok || bb.Compute <= 0 {
		t.Fatalf("bitonic breakdown = %+v ok=%v", bb, ok)
	}
}

func TestEndToEndFrequency(t *testing.T) {
	const eps, support = 0.005, 0.03
	data := stream.Zipf(50000, 1.3, 2000, 5)
	exact := map[float32]int64{}
	for _, v := range data {
		exact[v]++
	}
	for _, b := range []Backend{BackendGPU, BackendCPU} {
		eng := New(b)
		est := eng.NewFrequencyEstimator(eps)
		est.ProcessSlice(data)
		items := est.Query(support)
		reported := map[float32]bool{}
		for _, it := range items {
			reported[it.Value] = true
		}
		for v, c := range exact {
			if float64(c) >= support*float64(len(data)) && !reported[v] {
				t.Fatalf("%v: false negative on %v (count %d)", b, v, c)
			}
		}
	}
}

func TestEndToEndQuantile(t *testing.T) {
	const eps = 0.01
	data := stream.Gaussian(40000, 50, 10, 6)
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	for _, b := range []Backend{BackendGPU, BackendCPU} {
		eng := New(b)
		est := eng.NewQuantileEstimator(eps, int64(len(data)))
		est.ProcessSlice(data)
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			got := est.Query(phi)
			r := int(math.Ceil(phi * float64(len(ref))))
			lo := sort.Search(len(ref), func(i int) bool { return ref[i] >= got }) + 1
			hi := sort.Search(len(ref), func(i int) bool { return ref[i] > got })
			var d int
			switch {
			case r < lo:
				d = lo - r
			case r > hi:
				d = r - hi
			}
			if float64(d) > eps*float64(len(ref))+1 {
				t.Fatalf("%v phi=%v: rank error %d", b, phi, d)
			}
		}
	}
}

func TestEndToEndSlidingWindows(t *testing.T) {
	const eps = 0.02
	const W = 5000
	data := stream.Zipf(20000, 1.2, 300, 7)
	eng := New(BackendGPU)
	sf := eng.NewSlidingFrequency(eps, W)
	sq := eng.NewSlidingQuantile(eps, W)
	sf.ProcessSlice(data)
	sq.ProcessSlice(data)

	exact := map[float32]int64{}
	for _, v := range data[len(data)-W:] {
		exact[v]++
	}
	for v, c := range exact {
		est := sf.Estimate(v)
		if math.Abs(float64(est-c)) > eps*float64(W)+1e-9 {
			t.Fatalf("sliding frequency error on %v: est %d true %d", v, est, c)
		}
	}
	med := sq.Query(0.5)
	win := append([]float32(nil), data[len(data)-W:]...)
	cpusort.Quicksort(win)
	r := W / 2
	lo := sort.Search(len(win), func(i int) bool { return win[i] >= med }) + 1
	hi := sort.Search(len(win), func(i int) bool { return win[i] > med })
	var d int
	switch {
	case r < lo:
		d = lo - r
	case r > hi:
		d = r - hi
	}
	if float64(d) > eps*float64(W)+1 {
		t.Fatalf("sliding median rank error %d", d)
	}
}

func TestEngineStatsRegistry(t *testing.T) {
	eng := New(BackendCPU)
	fe := eng.NewFrequencyEstimator(0.01)
	qe := eng.NewQuantileEstimator(0.01, 10_000)
	data := stream.Uniform(5000, 21)
	fe.ProcessSlice(data)
	qe.ProcessSlice(data)
	fe.Flush()

	all := eng.Stats()
	if len(all) != 2 {
		t.Fatalf("Stats() len = %d, want 2", len(all))
	}
	if all[0].Kind != "frequency" || all[1].Kind != "quantile" {
		t.Fatalf("kinds = %q, %q", all[0].Kind, all[1].Kind)
	}
	for _, es := range all {
		if es.Stats.SortedValues != 5000 || es.Stats.Windows == 0 || es.Stats.Sort <= 0 {
			t.Fatalf("%s stats = %+v", es.Kind, es.Stats)
		}
	}
}

func TestEngineEstimatorsGetOwnSorters(t *testing.T) {
	// Estimator[float32] ingestion must not disturb the engine's own sorter: the
	// GPU LastSortBreakdown reflects Engine[float32].Sort calls only, and two
	// estimators never share simulator state.
	eng := New(BackendGPU)
	if _, ok := eng.LastSortBreakdown(); ok {
		t.Fatal("breakdown before any Engine[float32].Sort call")
	}
	fe := eng.NewFrequencyEstimator(0.01)
	fe.ProcessSlice(stream.Uniform(2000, 22))
	fe.Flush()
	if _, ok := eng.LastSortBreakdown(); ok {
		t.Fatal("estimator ingestion leaked into the engine sorter")
	}
	eng.Sort(stream.Uniform(4096, 23))
	if _, ok := eng.LastSortBreakdown(); !ok {
		t.Fatal("no breakdown after Engine[float32].Sort")
	}
}
