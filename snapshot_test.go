package gpustream

import (
	"errors"
	"math"
	"testing"

	"gpustream/internal/wire"
)

func TestMergeFamilyMismatch(t *testing.T) {
	eng := New(BackendCPU)
	fe := eng.NewFrequencyEstimator(0.1)
	qe := eng.NewQuantileEstimator(0.1, 16)
	data := []float32{1, 2, 3, 2, 1}
	if err := fe.ProcessSlice(data); err != nil {
		t.Fatal(err)
	}
	if err := qe.ProcessSlice(data); err != nil {
		t.Fatal(err)
	}

	if _, err := Merge(fe.Snapshot(), qe.Snapshot()); !errors.Is(err, ErrNotMergeable) {
		t.Fatalf("frequency+quantile: %v", err)
	}
	if _, err := Merge(qe.Snapshot(), fe.Snapshot()); !errors.Is(err, ErrNotMergeable) {
		t.Fatalf("quantile+frequency: %v", err)
	}
	if _, err := MergeAll(fe.Snapshot(), fe.Snapshot(), qe.Snapshot()); !errors.Is(err, ErrNotMergeable) {
		t.Fatalf("MergeAll mixed: %v", err)
	}
}

func TestMergeAllOfNothing(t *testing.T) {
	if _, err := MergeAll[float32](); err == nil {
		t.Fatal("MergeAll() succeeded")
	}
}

// TestMergeSemantics pins the merge rules observable through the View
// interface: counts add, frequency estimates add, and answers are
// order-independent.
func TestMergeSemantics(t *testing.T) {
	eng := New(BackendCPU)
	a := eng.NewFrequencyEstimator(0.05)
	b := eng.NewFrequencyEstimator(0.05)
	if err := a.ProcessSlice([]float32{1, 1, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := b.ProcessSlice([]float32{1, 2, 2, 4}); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Snapshot(), b.Snapshot()

	ab, err := Merge(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge(sb, sa)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Count() != 9 || ba.Count() != 9 {
		t.Fatalf("merged counts %d, %d, want 9", ab.Count(), ba.Count())
	}
	// Streams this short stay exact under lossy counting, so the merged
	// estimates must equal the true combined counts in either merge order.
	for v, want := range map[float32]int64{1: 4, 2: 3, 3: 1, 4: 1, 9: 0} {
		for _, m := range []Snapshot[float32]{ab, ba} {
			if got, ok := m.Frequency(v); !ok || got != want {
				t.Fatalf("merged Frequency(%v) = (%d, %v), want %d", v, got, ok, want)
			}
		}
	}
	// The inputs must stay untouched (copy-on-write all the way down).
	if c, _ := sa.Frequency(1); c != 3 {
		t.Fatalf("input snapshot mutated: Frequency(1) = %d, want 3", c)
	}

	// Merging marshaled copies is identical to merging the originals.
	da, err := UnmarshalSnapshot[float32](mustMarshal(t, sa))
	if err != nil {
		t.Fatal(err)
	}
	db, err := UnmarshalSnapshot[float32](mustMarshal(t, sb))
	if err != nil {
		t.Fatal(err)
	}
	wireMerged, err := Merge(da, db)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, ab, wireMerged)
}

// TestMergeQuantileEps pins the GK sensor-rule eps combination: the merged
// summary is max(epsA, epsB)-approximate, never the sum.
func TestMergeQuantileEps(t *testing.T) {
	eng := New(BackendCPU)
	a := eng.NewQuantileEstimator(0.02, 1000)
	b := eng.NewQuantileEstimator(0.1, 1000)
	data := goldenValues[float32](1000)
	if err := a.ProcessSlice(data[:600]); err != nil {
		t.Fatal(err)
	}
	if err := b.ProcessSlice(data[600:]); err != nil {
		t.Fatal(err)
	}
	sa := a.Snapshot().(*QuantileSnapshot[float32])
	sb := b.Snapshot().(*QuantileSnapshot[float32])
	m, err := Merge[float32](sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 1000 {
		t.Fatalf("merged Count = %d, want 1000", m.Count())
	}
	qs, ok := m.(*QuantileSnapshot[float32])
	if !ok {
		t.Fatalf("merged snapshot is %T", m)
	}
	if got, want := qs.Eps(), math.Max(sa.Eps(), sb.Eps()); got != want {
		t.Fatalf("merged snapshot eps = %v, want max rule %v", got, want)
	}
	if got, want := qs.Summary().Eps, math.Max(sa.Summary().Eps, sb.Summary().Eps); got != want {
		t.Fatalf("merged summary eps = %v, want max rule %v", got, want)
	}
}

func TestTreeEps(t *testing.T) {
	if got := TreeEps(0.1, 1); got != 0.1 {
		t.Fatalf("TreeEps(0.1, 1) = %v", got)
	}
	if got := TreeEps(0.1, 2); got != 0.05 {
		t.Fatalf("TreeEps(0.1, 2) = %v", got)
	}
	if got := TreeEps(0.09, 3); got != 0.03 {
		t.Fatalf("TreeEps(0.09, 3) = %v", got)
	}
	for name, fn := range map[string]func(){
		"eps=0":  func() { TreeEps(0, 2) },
		"eps=1":  func() { TreeEps(1, 2) },
		"eps=-1": func() { TreeEps(-1, 2) },
		"h=0":    func() { TreeEps(0.1, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

// fakeView is a foreign Snapshot implementation: the root helpers must
// reject it cleanly rather than assume every view speaks the wire format.
type fakeView struct{}

func (fakeView) Count() int64                            { return 0 }
func (fakeView) Size() int                               { return 0 }
func (fakeView) Quantile(float64) (float32, bool)        { return 0, false }
func (fakeView) HeavyHitters(float64) ([]Item[float32], bool) { return nil, false }
func (fakeView) Frequency(float32) (int64, bool)         { return 0, false }

func TestForeignSnapshot(t *testing.T) {
	if _, err := MarshalSnapshot[float32](fakeView{}); err == nil {
		t.Fatal("marshaled a foreign snapshot implementation")
	}
	eng := New(BackendCPU)
	fe := eng.NewFrequencyEstimator(0.1)
	if _, err := Merge[float32](fe.Snapshot(), fakeView{}); !errors.Is(err, ErrNotMergeable) {
		t.Fatalf("merge with foreign view: %v", err)
	}
}

// TestSnapmergeFanIn exercises the cmd/snapmerge flow at the library level:
// marshaled worker snapshots from partitioned ingestion, one merge, and the
// merged root re-marshaled for the next level — with the root blob decoding
// to the same answers.
func TestSnapmergeFanIn(t *testing.T) {
	data := goldenValues[float32](4000)
	var blobs [][]byte
	for i := 0; i < 4; i++ {
		eng := New(BackendCPU)
		est := eng.NewQuantileEstimator(TreeEps(0.04, 2), 1000)
		if err := est.ProcessSlice(data[i*1000 : (i+1)*1000]); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, mustMarshal(t, est.Snapshot()))
	}
	root := mergeBlobs[float32](t, blobs)
	if root.Count() != 4000 {
		t.Fatalf("root Count = %d, want 4000", root.Count())
	}
	reRead, err := UnmarshalSnapshot[float32](mustMarshal(t, root))
	if err != nil {
		t.Fatalf("re-read root blob: %v", err)
	}
	assertSameAnswers(t, root, reRead)

	if _, err := UnmarshalSnapshot[uint64](blobs[0]); !errors.Is(err, wire.ErrValueType) {
		t.Fatalf("cross-type fan-in: %v", err)
	}
}
