package gpustream_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"gpustream"
	"gpustream/internal/stream"
)

// Goroutine hygiene: Close (and CloseContext, even when its deadline expires
// mid-drain) must terminate every goroutine an estimator started — shard
// workers, async sort/merge stages, and the sorter's SortAsync helpers. Each
// scenario snapshots runtime.NumGoroutine before building the estimator and
// polls after Close until the count returns to the baseline.

// settleGoroutines polls until the live goroutine count drops back to at
// most baseline, failing after five seconds. A small grace loop absorbs
// unrelated runtime goroutines finishing up.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizers; stage goroutines don't rely on them
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leakScenario ingests a multi-window stream into the estimator built by
// mk, queries it, closes it, and demands the goroutine count settles.
func leakScenario(t *testing.T, name string, run func(data []float32)) {
	t.Run(name, func(t *testing.T) {
		data := stream.Zipf(12_000, 1.2, 500, 7)
		baseline := runtime.NumGoroutine()
		run(data)
		settleGoroutines(t, baseline)
	})
}

func TestCloseTerminatesGoroutines(t *testing.T) {
	for _, mode := range []struct {
		name  string
		eopts []gpustream.EstimatorOption
		popts []gpustream.ParallelOption
	}{
		{name: "sync"},
		{
			name:  "async",
			eopts: []gpustream.EstimatorOption{gpustream.WithAsyncIngestion()},
			popts: []gpustream.ParallelOption{gpustream.WithAsyncShards()},
		},
	} {
		eng := gpustream.New(gpustream.BackendGPU)
		leakScenario(t, "frequency/"+mode.name, func(data []float32) {
			est := eng.NewFrequencyEstimator(0.005, mode.eopts...)
			est.ProcessSlice(data)
			_ = est.Query(0.01)
			est.Close()
		})
		leakScenario(t, "quantile/"+mode.name, func(data []float32) {
			est := eng.NewQuantileEstimator(0.01, int64(len(data)), mode.eopts...)
			est.ProcessSlice(data)
			_ = est.Query(0.5)
			est.Close()
		})
		leakScenario(t, "sliding-frequency/"+mode.name, func(data []float32) {
			est := eng.NewSlidingFrequency(0.01, 2_000, mode.eopts...)
			est.ProcessSlice(data)
			_ = est.Query(0.02)
			est.Close()
		})
		leakScenario(t, "sliding-quantile/"+mode.name, func(data []float32) {
			est := eng.NewSlidingQuantile(0.01, 2_000, mode.eopts...)
			est.ProcessSlice(data)
			_ = est.Query(0.5)
			est.Close()
		})
		leakScenario(t, "parallel-frequency/"+mode.name, func(data []float32) {
			popts := append([]gpustream.ParallelOption{gpustream.WithBatchSize(512)}, mode.popts...)
			est := eng.NewParallelFrequencyEstimator(0.005, 4, popts...)
			est.ProcessSlice(data)
			est.Close()
			_ = est.Query(0.01)
		})
		leakScenario(t, "parallel-quantile/"+mode.name, func(data []float32) {
			popts := append([]gpustream.ParallelOption{gpustream.WithBatchSize(512)}, mode.popts...)
			est := eng.NewParallelQuantileEstimator(0.01, int64(len(data)), 4, popts...)
			est.ProcessSlice(data)
			est.Close()
			_ = est.Query(0.5)
		})
		// Auto-backend estimators carry adaptive controllers (which own no
		// goroutines of their own) over pipelines that swap sorters at
		// runtime; Close must still terminate every stage goroutine,
		// including async helpers of sorters the controller probed in.
		auto := gpustream.New(gpustream.BackendAuto)
		leakScenario(t, "auto-quantile/"+mode.name, func(data []float32) {
			est := auto.NewQuantileEstimator(0.01, int64(len(data)), mode.eopts...)
			est.ProcessSlice(data)
			_ = est.Query(0.5)
			est.Close()
		})
		leakScenario(t, "auto-parallel-frequency/"+mode.name, func(data []float32) {
			popts := append([]gpustream.ParallelOption{gpustream.WithBatchSize(512)}, mode.popts...)
			est := auto.NewParallelFrequencyEstimator(0.005, 4, popts...)
			est.ProcessSlice(data)
			est.Close()
			_ = est.Query(0.01)
		})
		// CloseContext with an already-expired deadline takes the
		// abandoned-drain path: workers finish their queued batches on their
		// own and the deferred cleanup must still close the per-shard
		// estimators, async stages included.
		leakScenario(t, "parallel-close-expired/"+mode.name, func(data []float32) {
			popts := append([]gpustream.ParallelOption{gpustream.WithBatchSize(256)}, mode.popts...)
			est := eng.NewParallelFrequencyEstimator(0.005, 4, popts...)
			est.ProcessSlice(data)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_ = est.CloseContext(ctx) // error (context canceled) is the point
		})
	}
}
