package gpustream

import (
	"fmt"
	"strings"
)

// Estimator is the surface shared by all seven estimator families:
// FrequencyEstimator, QuantileEstimator, SlidingFrequency, SlidingQuantile,
// ParallelFrequencyEstimator, ParallelQuantileEstimator, and
// FrugalEstimator. Callers that do not care which sketch they are driving
// can program against it alone.
//
// The lifecycle is error-based: Process and ProcessSlice return an error
// wrapping ErrClosed once Close has been called; Flush and Close are
// idempotent and report nil on the serial families (the parallel families'
// CloseContext can fail on context expiry). Every method is safe under
// concurrent use — one writer and any number of query/snapshot goroutines
// is the intended pattern — and Snapshot returns an immutable view that
// keeps answering after the stream moves on or the estimator closes.
type Estimator[T Value] interface {
	// Process ingests one stream value.
	Process(v T) error
	// ProcessSlice ingests a batch; the caller may reuse the slice
	// immediately.
	ProcessSlice(data []T) error
	// Flush forces buffered values into the summary state.
	Flush() error
	// Close flushes, releases pooled buffers, and stops ingestion. The
	// estimator remains queryable.
	Close() error
	// Count reports the stream length ingested so far.
	Count() int64
	// Stats reports the unified per-stage pipeline telemetry.
	Stats() Stats
	// Snapshot returns an immutable point-in-time queryable view.
	Snapshot() Snapshot[T]
}

// assertEstimators pins, at compile time, that every estimator family
// satisfies Estimator at element type T.
func assertEstimators[T Value]() {
	var (
		_ Estimator[T] = (*FrequencyEstimator[T])(nil)
		_ Estimator[T] = (*QuantileEstimator[T])(nil)
		_ Estimator[T] = (*SlidingFrequency[T])(nil)
		_ Estimator[T] = (*SlidingQuantile[T])(nil)
		_ Estimator[T] = (*ParallelFrequencyEstimator[T])(nil)
		_ Estimator[T] = (*ParallelQuantileEstimator[T])(nil)
		_ Estimator[T] = (*FrugalEstimator[T])(nil)
	)
}

// Compile-time instantiation of every family at the floating-point and
// integer representatives of the Value constraint.
var (
	_ = assertEstimators[float32]
	_ = assertEstimators[float64]
	_ = assertEstimators[uint32]
	_ = assertEstimators[uint64]
	_ = assertEstimators[int32]
	_ = assertEstimators[int64]
)

// ParseBackend resolves a backend name — as accepted by the cmd tools'
// -backend flags — to a Backend. The canonical names are the Backend.String
// forms ("gpu", "gpu-bitonic", "cpu", "cpu-parallel", "samplesort", "auto");
// the legacy aliases "bitonic" (for gpu-bitonic), "cpu-ht" (the
// hyper-threaded analog, cpu-parallel), and "sample" (samplesort) are
// accepted too. Matching is case-insensitive.
func ParseBackend(name string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "gpu":
		return BackendGPU, nil
	case "gpu-bitonic", "bitonic":
		return BackendGPUBitonic, nil
	case "cpu":
		return BackendCPU, nil
	case "cpu-parallel", "cpu-ht":
		return BackendCPUParallel, nil
	case "samplesort", "sample":
		return BackendSampleSort, nil
	case "auto":
		return BackendAuto, nil
	}
	return 0, fmt.Errorf("gpustream: unknown backend %q (want gpu, gpu-bitonic, cpu, cpu-parallel, samplesort, or auto)", name)
}
