package gpustream_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"gpustream"
	"gpustream/internal/stream"
)

// The concurrent-query contract: one writer and any number of query
// goroutines may share an estimator; live queries are synchronized with
// ingestion, Snapshot() views are immutable, and lifecycle misuse reports
// errors instead of panicking. These tests are the -race workout for all
// six estimator families.

const (
	hammerEps     = 0.01
	hammerWindow  = 50_000
	hammerReaders = 4
)

// hammerN picks the writer's stream length: 1M un-short (the acceptance
// bar), scaled down for -short runs.
func hammerN() int {
	if testing.Short() {
		return 120_000
	}
	return 1_000_000
}

// families enumerates the six estimator families over a CPU-backed engine.
func families(eng *gpustream.Engine[float32], capacity int64) map[string]func() gpustream.Estimator[float32] {
	return map[string]func() gpustream.Estimator[float32]{
		"frequency": func() gpustream.Estimator[float32] { return eng.NewFrequencyEstimator(hammerEps) },
		"quantile":  func() gpustream.Estimator[float32] { return eng.NewQuantileEstimator(hammerEps, capacity) },
		"sliding-frequency": func() gpustream.Estimator[float32] {
			return eng.NewSlidingFrequency(hammerEps, hammerWindow)
		},
		"sliding-quantile": func() gpustream.Estimator[float32] {
			return eng.NewSlidingQuantile(hammerEps, hammerWindow)
		},
		"parallel-frequency": func() gpustream.Estimator[float32] {
			return eng.NewParallelFrequencyEstimator(hammerEps, 2, gpustream.WithBatchSize(1<<14))
		},
		"parallel-quantile": func() gpustream.Estimator[float32] {
			return eng.NewParallelQuantileEstimator(hammerEps, capacity, 2, gpustream.WithBatchSize(1<<14))
		},
	}
}

// liveQuery exercises the family-specific live query surface, which must be
// safe mid-ingestion. Quantile queries panic on an empty stream by
// contract, so they are gated on Count.
func liveQuery(est gpustream.Estimator[float32], probe float32) {
	switch e := est.(type) {
	case *gpustream.FrequencyEstimator[float32]:
		e.Query(0.02)
		e.Estimate(probe)
	case *gpustream.QuantileEstimator[float32]:
		if e.Count() > 0 {
			e.Query(0.5)
		}
	case *gpustream.SlidingFrequency[float32]:
		e.Query(0.02)
		e.Estimate(probe)
		e.QueryWindow(0.02, hammerWindow/2)
	case *gpustream.SlidingQuantile[float32]:
		if e.Count() > 0 {
			e.Query(0.5)
			e.QueryWindow(0.5, hammerWindow/2)
		}
	case *gpustream.ParallelFrequencyEstimator[float32]:
		e.Query(0.02)
		e.Estimate(probe)
	case *gpustream.ParallelQuantileEstimator[float32]:
		if e.Count() > 0 {
			e.Query(0.5)
		}
	}
}

// TestConcurrentQueryDuringIngest runs, for every family, four reader
// goroutines issuing live queries, stats reads, and snapshots while one
// writer ingests the full stream. Run under -race this is the tentpole's
// publication-protocol check.
func TestConcurrentQueryDuringIngest(t *testing.T) {
	n := hammerN()
	data := stream.Zipf(n, 1.2, 5000, 42)
	probe := data[0]
	eng := gpustream.New(gpustream.BackendCPU)
	for name, mk := range families(eng, int64(n)) {
		mk := mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			est := mk()
			done := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < hammerReaders; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						v := est.Snapshot()
						if v.Count() < 0 || v.Size() < 0 {
							t.Error("negative snapshot dimensions")
							return
						}
						if q, ok := v.Quantile(0.5); ok && q != q { // NaN guard
							t.Error("NaN quantile")
							return
						}
						if _, ok := v.HeavyHitters(0.02); ok {
							v.Frequency(probe)
						}
						st := est.Stats()
						if st.SortedValues < 0 {
							t.Error("torn stats")
							return
						}
						liveQuery(est, probe)
						est.Count()
						// Yield so the single writer is not starved on
						// small GOMAXPROCS hosts.
						time.Sleep(200 * time.Microsecond)
					}
				}()
			}
			for off := 0; off < len(data); off += 4096 {
				end := off + 4096
				if end > len(data) {
					end = len(data)
				}
				if err := est.ProcessSlice(data[off:end]); err != nil {
					t.Errorf("ProcessSlice: %v", err)
					break
				}
			}
			close(done)
			wg.Wait()
			if err := est.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if got := est.Count(); got != int64(len(data)) {
				t.Fatalf("Count = %d, want %d", got, len(data))
			}
		})
	}
}

// prefixAnswers probes a snapshot and a serial estimator stopped at the
// same prefix with the same queries; the two answer sets must be
// bit-identical.
func snapshotVsSerial(t *testing.T, name string, snap gpustream.Snapshot[float32], serial gpustream.Estimator[float32]) {
	t.Helper()
	sv := serial.Snapshot()
	if snap.Count() != sv.Count() {
		t.Fatalf("%s: snapshot Count %d != serial %d", name, snap.Count(), sv.Count())
	}
	for _, phi := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		a, aok := snap.Quantile(phi)
		b, bok := sv.Quantile(phi)
		if aok != bok || a != b {
			t.Fatalf("%s: Quantile(%g) = (%v,%v) != serial (%v,%v)", name, phi, a, aok, b, bok)
		}
	}
	for _, sp := range []float64{0, 0.01, 0.05} {
		a, aok := snap.HeavyHitters(sp)
		b, bok := sv.HeavyHitters(sp)
		if aok != bok || !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: HeavyHitters(%g) diverged (%d vs %d items)", name, sp, len(a), len(b))
		}
	}
	for v := float32(0); v < 32; v++ {
		a, aok := snap.Frequency(v)
		b, bok := sv.Frequency(v)
		if aok != bok || a != b {
			t.Fatalf("%s: Frequency(%v) = (%d,%v) != serial (%d,%v)", name, v, a, aok, b, bok)
		}
	}
}

// TestSnapshotMatchesSerialPrefix is the acceptance check: a Snapshot taken
// at a stream prefix answers bit-identically to a serial estimator that
// stopped ingesting at that prefix, even though the snapshotted estimator
// keeps ingesting. Parallel families run K=1, where output is bit-identical
// to serial by construction.
func TestSnapshotMatchesSerialPrefix(t *testing.T) {
	const n = 200_000
	prefix := n/2 + 137 // deliberately not window-aligned
	data := stream.Zipf(n, 1.2, 2000, 7)
	eng := gpustream.New(gpustream.BackendCPU)

	cases := map[string][2]func() gpustream.Estimator[float32]{
		"frequency": {
			func() gpustream.Estimator[float32] { return eng.NewFrequencyEstimator(hammerEps) },
			func() gpustream.Estimator[float32] { return eng.NewFrequencyEstimator(hammerEps) },
		},
		"quantile": {
			func() gpustream.Estimator[float32] { return eng.NewQuantileEstimator(hammerEps, n) },
			func() gpustream.Estimator[float32] { return eng.NewQuantileEstimator(hammerEps, n) },
		},
		"sliding-frequency": {
			func() gpustream.Estimator[float32] { return eng.NewSlidingFrequency(hammerEps, hammerWindow) },
			func() gpustream.Estimator[float32] { return eng.NewSlidingFrequency(hammerEps, hammerWindow) },
		},
		"sliding-quantile": {
			func() gpustream.Estimator[float32] { return eng.NewSlidingQuantile(hammerEps, hammerWindow) },
			func() gpustream.Estimator[float32] { return eng.NewSlidingQuantile(hammerEps, hammerWindow) },
		},
		"parallel-frequency": {
			func() gpustream.Estimator[float32] {
				return eng.NewParallelFrequencyEstimator(hammerEps, 1, gpustream.WithBatchSize(1<<12))
			},
			func() gpustream.Estimator[float32] { return eng.NewFrequencyEstimator(hammerEps) },
		},
		"parallel-quantile": {
			func() gpustream.Estimator[float32] {
				return eng.NewParallelQuantileEstimator(hammerEps, n, 1, gpustream.WithBatchSize(1<<12))
			},
			func() gpustream.Estimator[float32] { return eng.NewQuantileEstimator(hammerEps, n) },
		},
	}
	for name, mk := range cases {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			live, serial := mk[0](), mk[1]()
			if err := live.ProcessSlice(data[:prefix]); err != nil {
				t.Fatal(err)
			}
			snap := live.Snapshot()
			// The live estimator moves on; the snapshot must not.
			if err := live.ProcessSlice(data[prefix:]); err != nil {
				t.Fatal(err)
			}
			if err := serial.ProcessSlice(data[:prefix]); err != nil {
				t.Fatal(err)
			}
			snapshotVsSerial(t, name, snap, serial)
		})
	}
}

// TestSnapshotImmutableAfterMoreIngest records a snapshot's answers, drives
// enough further ingestion to recycle every buffer the snapshot could alias
// (window swaps, pane expiry), closes the estimator, and checks the
// snapshot still gives the recorded answers.
func TestSnapshotImmutableAfterMoreIngest(t *testing.T) {
	const n = 150_000
	data := stream.Zipf(n, 1.2, 2000, 11)
	eng := gpustream.New(gpustream.BackendCPU)
	for name, mk := range families(eng, 2*n) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			est := mk()
			if err := est.ProcessSlice(data[:n/3]); err != nil {
				t.Fatal(err)
			}
			snap := est.Snapshot()
			record := func() (int64, int, []gpustream.Item[float32], float32) {
				hh, _ := snap.HeavyHitters(0.02)
				q, _ := snap.Quantile(0.5)
				return snap.Count(), snap.Size(), hh, q
			}
			c0, s0, hh0, q0 := record()
			if err := est.ProcessSlice(data[n/3:]); err != nil {
				t.Fatal(err)
			}
			if err := est.Close(); err != nil {
				t.Fatal(err)
			}
			c1, s1, hh1, q1 := record()
			if c0 != c1 || s0 != s1 || q0 != q1 || !reflect.DeepEqual(hh0, hh1) {
				t.Fatalf("snapshot mutated: count %d->%d size %d->%d q %v->%v hh %d->%d items",
					c0, c1, s0, s1, q0, q1, len(hh0), len(hh1))
			}
		})
	}
}

// TestLifecycleErrors replaces the panic-on-ingest-after-Close contract:
// closed estimators report ErrClosed from ingestion, stay queryable, and
// tolerate redundant Flush/Close.
func TestLifecycleErrors(t *testing.T) {
	data := stream.Zipf(30_000, 1.2, 500, 13)
	eng := gpustream.New(gpustream.BackendCPU)
	for name, mk := range families(eng, int64(len(data))) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			est := mk()
			if err := est.ProcessSlice(data); err != nil {
				t.Fatalf("ProcessSlice: %v", err)
			}
			if err := est.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if err := est.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := est.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if err := est.Flush(); err != nil {
				t.Fatalf("Flush after Close: %v", err)
			}
			if err := est.Process(1); !errors.Is(err, gpustream.ErrClosed) {
				t.Fatalf("Process after Close = %v, want ErrClosed", err)
			}
			if err := est.ProcessSlice(data[:2]); !errors.Is(err, gpustream.ErrClosed) {
				t.Fatalf("ProcessSlice after Close = %v, want ErrClosed", err)
			}
			if got := est.Count(); got != int64(len(data)) {
				t.Fatalf("rejected ingestion changed Count to %d", got)
			}
			// Still queryable after Close, including fresh snapshots.
			v := est.Snapshot()
			if v.Count() != int64(len(data)) {
				t.Fatalf("post-Close snapshot Count = %d", v.Count())
			}
			liveQuery(est, data[0])
		})
	}
}

// TestCloseContext exercises the parallel estimators' deadline-aware drain:
// a live context drains everything; an expired context abandons the
// un-handed-off buffer, reports the context error, and leaves the estimator
// closed but queryable.
func TestCloseContext(t *testing.T) {
	eng := gpustream.New(gpustream.BackendCPU)
	data := stream.Zipf(100_000, 1.2, 1000, 17)

	t.Run("drains", func(t *testing.T) {
		est := eng.NewParallelQuantileEstimator(hammerEps, int64(len(data)), 4, gpustream.WithBatchSize(1<<12))
		if err := est.ProcessSlice(data); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := est.CloseContext(ctx); err != nil {
			t.Fatalf("CloseContext: %v", err)
		}
		if est.Count() != int64(len(data)) {
			t.Fatalf("Count = %d after drained close", est.Count())
		}
		est.Query(0.5)
	})

	t.Run("expired", func(t *testing.T) {
		// A batch size larger than the stream keeps every value in the
		// hand-off buffer, so an already-cancelled context must drop them.
		est := eng.NewParallelFrequencyEstimator(hammerEps, 2, gpustream.WithBatchSize(1<<20))
		if err := est.ProcessSlice(data); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		err := est.CloseContext(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("CloseContext = %v, want context.Canceled", err)
		}
		if est.Count() != 0 {
			t.Fatalf("dropped values still counted: Count = %d", est.Count())
		}
		if err := est.Process(1); !errors.Is(err, gpustream.ErrClosed) {
			t.Fatalf("Process after abandoned Close = %v, want ErrClosed", err)
		}
		if items := est.Query(0); items != nil {
			t.Fatalf("abandoned close left queryable state: %v", items)
		}
	})

	t.Run("idempotent", func(t *testing.T) {
		est := eng.NewParallelQuantileEstimator(hammerEps, 0, 2)
		if err := est.Close(); err != nil {
			t.Fatal(err)
		}
		if err := est.CloseContext(context.Background()); err != nil {
			t.Fatalf("CloseContext after Close: %v", err)
		}
	})
}

// TestEngineStatsConsistentMidIngest reads Engine[float32].Stats concurrently with
// serial-estimator ingestion; every report must be internally consistent
// (counters move together under the estimator lock).
func TestEngineStatsConsistentMidIngest(t *testing.T) {
	eng := gpustream.New(gpustream.BackendCPU)
	fe := eng.NewFrequencyEstimator(hammerEps)
	qe := eng.NewQuantileEstimator(hammerEps, 0)
	data := stream.Zipf(200_000, 1.2, 2000, 19)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, es := range eng.Stats() {
				st := es.Stats
				if st.SortedValues > 0 && st.Windows == 0 {
					t.Errorf("%s: torn stats: %d sorted values but 0 windows", es.Kind, st.SortedValues)
					return
				}
			}
		}
	}()
	for off := 0; off < len(data); off += 1024 {
		end := off + 1024
		if end > len(data) {
			end = len(data)
		}
		_ = fe.ProcessSlice(data[off:end])
		_ = qe.ProcessSlice(data[off:end])
	}
	close(done)
	wg.Wait()
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	if err := qe.Close(); err != nil {
		t.Fatal(err)
	}
	all := eng.Stats()
	if len(all) != 2 || all[0].Stats.SortedValues != int64(len(data)) {
		t.Fatalf("final stats: %+v", all)
	}
}

// TestParseBackend covers the canonical names, the legacy cmd aliases, and
// the error path.
func TestParseBackend(t *testing.T) {
	good := map[string]gpustream.Backend{
		"gpu":          gpustream.BackendGPU,
		"GPU":          gpustream.BackendGPU,
		"gpu-bitonic":  gpustream.BackendGPUBitonic,
		"bitonic":      gpustream.BackendGPUBitonic,
		"cpu":          gpustream.BackendCPU,
		" cpu ":        gpustream.BackendCPU,
		"cpu-parallel": gpustream.BackendCPUParallel,
		"cpu-ht":       gpustream.BackendCPUParallel,
	}
	for name, want := range good {
		got, err := gpustream.ParseBackend(name)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v", name, got, err, want)
		}
		if _, err := gpustream.ParseBackend(got.String()); err != nil {
			t.Fatalf("round-trip of %v failed: %v", got, err)
		}
	}
	if _, err := gpustream.ParseBackend("vulkan"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
}
