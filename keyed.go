package gpustream

import (
	"fmt"

	"gpustream/internal/keyed"
)

// Massive-cardinality keyed estimation: a per-key quantile estimate for
// every key in the stream, at tens of bytes per key. Keys start in a pooled
// frugal tier (one frugal-streaming tracker each — internal/frugal) and are
// promoted to dedicated eps-approximate GK summaries when the built-in
// heavy-hitter oracle sees them cross the promotion support, with the
// frugal estimate seeding the promoted summary so nothing is replayed.
// DESIGN.md section 13 covers the tier machinery and its error accounting.
//
//	eng := gpustream.NewOf[float32](gpustream.BackendGPU)
//	ke := gpustream.NewKeyedEstimator[uint64](eng, 0.01, 0.001)
//	ke.Process(flowID, latency)
//	p50, ok := ke.Quantile(flowID, 0.5)

// KeyedEstimator is the two-tier keyed quantile estimator over (K, T)
// observations. Both type parameters are stack value types: keys feed the
// heavy-hitter oracle's sorting pipeline and cross processes in keyed
// snapshots, so K needs an order and a wire encoding, not just equality.
type KeyedEstimator[K Value, T Value] = keyed.Estimator[K, T]

// KeyedSnapshot is the immutable view of a KeyedEstimator. It answers
// per-key queries rather than implementing Snapshot[T]; use the keyed wire
// entry points (MarshalKeyedSnapshot and friends) to move it across
// processes.
type KeyedSnapshot[K Value, T Value] = keyed.Snapshot[K, T]

// KeyedTierStats reports a keyed estimator's tier occupancy: per-tier key
// counts and the promotion rate, as surfaced through Engine.Stats.
type KeyedTierStats = keyed.TierStats

// KeyedOption configures a KeyedEstimator (WithKeyedPhi, WithKeyedSeed).
type KeyedOption = keyed.Option

// WithKeyedPhi selects the quantile every frugal-tier tracker targets
// (default 0.5, the per-key median). Promoted keys answer any quantile.
func WithKeyedPhi(phi float64) KeyedOption { return keyed.WithPhi(phi) }

// WithKeyedSeed seeds the keyed frugal tier's shared randomized rank gates.
func WithKeyedSeed(seed uint64) KeyedOption { return keyed.WithSeed(seed) }

// NewKeyedEstimator returns a keyed estimator over (K, T) observations
// backed by e's sorter for the heavy-hitter oracle: every key tracked
// frugally from its first observation, keys whose share of the stream
// crosses support promoted to dedicated eps-approximate GK summaries. The
// estimator registers with the engine, so Engine.Stats reports its oracle
// pipeline telemetry plus per-tier key counts and promotion rate.
func NewKeyedEstimator[K Value, T Value](e *Engine[T], eps, support float64, opts ...KeyedOption) *KeyedEstimator[K, T] {
	est := keyed.NewEstimator[K, T](eps, support, newBackendSorter[K](e.backend), opts...)
	e.trackKeyed(est.Stats, est.TierStats)
	return est
}

// MarshalKeyedSnapshot encodes a keyed snapshot in the versioned binary
// wire format (family FamilyKeyed, with a second tag byte for the key
// type).
func MarshalKeyedSnapshot[K Value, T Value](s *KeyedSnapshot[K, T]) ([]byte, error) {
	return s.MarshalBinary()
}

// UnmarshalKeyedSnapshot decodes a keyed snapshot blob produced by
// MarshalKeyedSnapshot in any process. Both instantiation types must match
// the blob's tags. Corrupt, truncated, or version-mismatched input returns
// an error wrapping the wire sentinel errors — never a panic.
func UnmarshalKeyedSnapshot[K Value, T Value](data []byte) (*KeyedSnapshot[K, T], error) {
	return keyed.UnmarshalSnapshot[K, T](data)
}

// MergeKeyedSnapshots combines two keyed snapshots over disjoint substreams
// into one over their union: key spaces union, promoted summaries merge
// under the GK rank-combination rule, and frugal-vs-promoted conflicts
// resolve conservatively (the summary wins; the frugal side folds in as a
// count-weighted point mass). Snapshots tracking different frugal target
// quantiles fail with an error wrapping keyed.ErrMismatchedConfig.
func MergeKeyedSnapshots[K Value, T Value](a, b *KeyedSnapshot[K, T]) (*KeyedSnapshot[K, T], error) {
	return keyed.MergeSnapshots(a, b)
}

// MergeAllKeyed folds MergeKeyedSnapshots left to right over one or more
// keyed snapshots. The per-key merge rules are commutative and
// tolerance-associative (partition-order metamorphic tests pin this), so
// the fold order does not affect the guarantees.
func MergeAllKeyed[K Value, T Value](snaps ...*KeyedSnapshot[K, T]) (*KeyedSnapshot[K, T], error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("gpustream: MergeAllKeyed of no snapshots")
	}
	acc := snaps[0]
	for _, s := range snaps[1:] {
		var err error
		if acc, err = MergeKeyedSnapshots(acc, s); err != nil {
			return nil, err
		}
	}
	return acc, nil
}
