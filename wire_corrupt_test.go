package gpustream

import (
	"errors"
	"math"
	"testing"

	"gpustream/internal/frequency"
	"gpustream/internal/frugal"
	"gpustream/internal/quantile"
	"gpustream/internal/wire"
)

// wireSentinels are the classification errors every decode failure must
// wrap (and the fuzz target enforces the same).
var wireSentinels = []error{
	wire.ErrBadMagic, wire.ErrVersion, wire.ErrValueType,
	wire.ErrFamily, wire.ErrTruncated, wire.ErrCorrupt,
}

func isWireError(err error) bool {
	for _, sentinel := range wireSentinels {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// TestUnmarshalTruncatedInput feeds every proper prefix shape of every
// family's blob to the decoder: all must fail with a wrapped sentinel
// (truncation, or corruption when the cut lands on a structural field),
// and none may panic.
func TestUnmarshalTruncatedInput(t *testing.T) {
	for name, snap := range goldenSnapshots[float32](t) {
		blob := mustMarshal(t, snap)
		for i := 0; i < len(blob); i++ {
			// Dense coverage through the header and first fields, then
			// strided through the bulk, always including the last byte cut.
			if i > 96 && i%31 != 0 && i != len(blob)-1 {
				continue
			}
			s, err := UnmarshalSnapshot[float32](blob[:i])
			if err == nil {
				t.Fatalf("%s: prefix %d of %d bytes decoded successfully", name, i, len(blob))
			}
			if s != nil {
				t.Fatalf("%s: prefix %d returned a snapshot alongside the error", name, i)
			}
			if !errors.Is(err, wire.ErrTruncated) && !errors.Is(err, wire.ErrCorrupt) {
				t.Fatalf("%s: prefix %d: error %v wraps neither ErrTruncated nor ErrCorrupt", name, i, err)
			}
		}
	}
}

// TestUnmarshalCorruptInput is the hostile-input table: malformed headers,
// mismatched tags, overflowed length fields, violated structural invariants.
// Every case must return an error wrapping the advertised sentinel — no
// panics, and (for the overflowed lengths) no allocation sized by the bogus
// field.
func TestUnmarshalCorruptInput(t *testing.T) {
	valid := mustMarshal(t, goldenSnapshots[float32](t)["frequency"])

	mutate := func(off int, b byte) []byte {
		m := append([]byte(nil), valid...)
		m[off] = b
		return m
	}
	// Hand-crafted bodies: each stops right where the corruption lives, so
	// the case pins the exact check that must fire.
	freqOverflow := wire.AppendU32(
		wire.AppendI64(wire.AppendF64(wire.AppendHeader(nil, wire.FamilyFrequency, wire.TagFloat32), 0.1), 10),
		math.MaxUint32)
	freqNegativeN := wire.AppendU32(
		wire.AppendI64(wire.AppendF64(wire.AppendHeader(nil, wire.FamilyFrequency, wire.TagFloat32), 0.1), -1),
		0)
	freqUnsorted := wire.AppendHeader(nil, wire.FamilyFrequency, wire.TagFloat32)
	freqUnsorted = wire.AppendF64(freqUnsorted, 0.1)
	freqUnsorted = wire.AppendI64(freqUnsorted, 10)
	freqUnsorted = wire.AppendU32(freqUnsorted, 2)
	for _, v := range []float32{5, 1} { // strictly descending: must be rejected
		freqUnsorted = wire.AppendValue(freqUnsorted, v)
		freqUnsorted = wire.AppendI64(freqUnsorted, 1)
		freqUnsorted = wire.AppendI64(freqUnsorted, 0)
	}
	quantBadFlag := wire.AppendU8(
		wire.AppendF64(wire.AppendHeader(nil, wire.FamilyQuantile, wire.TagFloat32), 0.1), 7)
	quantOverflow := wire.AppendHeader(nil, wire.FamilyQuantile, wire.TagFloat32)
	quantOverflow = wire.AppendF64(quantOverflow, 0.1)
	quantOverflow = wire.AppendU8(quantOverflow, 1)
	quantOverflow = wire.AppendF64(quantOverflow, 0.1) // summary eps
	quantOverflow = wire.AppendI64(quantOverflow, 10)  // summary n
	quantOverflow = wire.AppendU32(quantOverflow, math.MaxUint32)
	badRanks := wire.AppendHeader(nil, wire.FamilyQuantile, wire.TagFloat32)
	badRanks = wire.AppendF64(badRanks, 0.1)
	badRanks = wire.AppendU8(badRanks, 1)
	badRanks = wire.AppendF64(badRanks, 0.1)
	badRanks = wire.AppendI64(badRanks, 5) // N = 5 ...
	badRanks = wire.AppendU32(badRanks, 1)
	badRanks = wire.AppendValue(badRanks, float32(1))
	badRanks = wire.AppendI64(badRanks, 10) // ... but RMin = 10 > N
	badRanks = wire.AppendI64(badRanks, 12)
	headlessSummary := wire.AppendHeader(nil, wire.FamilyQuantile, wire.TagFloat32)
	headlessSummary = wire.AppendF64(headlessSummary, 0.1)
	headlessSummary = wire.AppendU8(headlessSummary, 1)
	headlessSummary = wire.AppendF64(headlessSummary, 0.1)
	headlessSummary = wire.AppendI64(headlessSummary, 5) // N = 5 with no entries
	headlessSummary = wire.AppendU32(headlessSummary, 0)
	winZeroW := wire.AppendI64(
		wire.AppendF64(wire.AppendHeader(nil, wire.FamilyWindowFrequency, wire.TagFloat32), 0.1), 0)
	winOverflow := wire.AppendHeader(nil, wire.FamilyWindowFrequency, wire.TagFloat32)
	winOverflow = wire.AppendF64(winOverflow, 0.1)
	winOverflow = wire.AppendI64(winOverflow, 100) // w
	winOverflow = wire.AppendI64(winOverflow, 0)   // count
	winOverflow = wire.AppendI64(winOverflow, 0)   // partialCount
	winOverflow = wire.AppendU32(winOverflow, math.MaxUint32)
	winQuantOverflow := wire.AppendHeader(nil, wire.FamilyWindowQuantile, wire.TagFloat32)
	winQuantOverflow = wire.AppendF64(winQuantOverflow, 0.1)
	winQuantOverflow = wire.AppendI64(winQuantOverflow, 100) // w
	winQuantOverflow = wire.AppendI64(winQuantOverflow, 0)   // count
	winQuantOverflow = wire.AppendU8(winQuantOverflow, 0)    // no partial
	winQuantOverflow = wire.AppendU32(winQuantOverflow, math.MaxUint32)
	frugalOverflow := wire.AppendU32(
		wire.AppendI64(wire.AppendHeader(nil, wire.FamilyFrugal, wire.TagFloat32), 10),
		math.MaxUint32)
	frugalNegativeN := wire.AppendU32(
		wire.AppendI64(wire.AppendHeader(nil, wire.FamilyFrugal, wire.TagFloat32), -1), 1)
	frugalNoTrackers := wire.AppendU32(
		wire.AppendI64(wire.AppendHeader(nil, wire.FamilyFrugal, wire.TagFloat32), 10), 0)
	// A fresh direction byte (0x00) on a tracker over a non-empty stream:
	// every tracker steps on every observation, so freshness must match n==0.
	frugalStaleFresh := wire.AppendHeader(nil, wire.FamilyFrugal, wire.TagFloat32)
	frugalStaleFresh = wire.AppendI64(frugalStaleFresh, 5)
	frugalStaleFresh = wire.AppendU32(frugalStaleFresh, 1)
	frugalStaleFresh = wire.AppendF64(frugalStaleFresh, 0.5)
	frugalStaleFresh = wire.AppendValue(frugalStaleFresh, float32(1))
	frugalStaleFresh = wire.AppendU8(frugalStaleFresh, 0x00)
	frugalUnsorted := wire.AppendHeader(nil, wire.FamilyFrugal, wire.TagFloat32)
	frugalUnsorted = wire.AppendI64(frugalUnsorted, 5)
	frugalUnsorted = wire.AppendU32(frugalUnsorted, 2)
	for _, phi := range []float64{0.9, 0.5} { // strictly descending: must be rejected
		frugalUnsorted = wire.AppendF64(frugalUnsorted, phi)
		frugalUnsorted = wire.AppendValue(frugalUnsorted, float32(1))
		frugalUnsorted = wire.AppendU8(frugalUnsorted, 0x40)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty input", nil, wire.ErrTruncated},
		{"short header", valid[:wire.HeaderSize-1], wire.ErrTruncated},
		{"bad magic", mutate(0, 'X'), wire.ErrBadMagic},
		{"future version", mutate(4, 99), wire.ErrVersion},
		{"unknown family", mutate(7, 200), wire.ErrFamily},
		{"trailing bytes", append(append([]byte(nil), valid...), 0, 0, 0), wire.ErrCorrupt},
		{"frequency count overflow", freqOverflow, wire.ErrTruncated},
		{"frequency negative n", freqNegativeN, wire.ErrCorrupt},
		{"frequency unsorted entries", freqUnsorted, wire.ErrCorrupt},
		{"quantile bad present flag", quantBadFlag, wire.ErrCorrupt},
		{"quantile summary count overflow", quantOverflow, wire.ErrTruncated},
		{"quantile impossible ranks", badRanks, wire.ErrCorrupt},
		{"quantile headless summary", headlessSummary, wire.ErrCorrupt},
		{"window zero width", winZeroW, wire.ErrCorrupt},
		{"window bin count overflow", winOverflow, wire.ErrTruncated},
		{"window pane count overflow", winQuantOverflow, wire.ErrTruncated},
		{"frugal tracker count overflow", frugalOverflow, wire.ErrTruncated},
		{"frugal negative n", frugalNegativeN, wire.ErrCorrupt},
		{"frugal no trackers", frugalNoTrackers, wire.ErrCorrupt},
		{"frugal fresh tracker on non-empty stream", frugalStaleFresh, wire.ErrCorrupt},
		{"frugal unsorted trackers", frugalUnsorted, wire.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := UnmarshalSnapshot[float32](tc.data)
			if err == nil {
				t.Fatal("decoded successfully")
			}
			if s != nil {
				t.Fatal("returned a snapshot alongside the error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
		})
	}

	t.Run("value type mismatch", func(t *testing.T) {
		// float32 blob read at every other instantiation, including uint32
		// (same encoded width — only the tag tells them apart).
		if _, err := UnmarshalSnapshot[uint32](valid); !errors.Is(err, wire.ErrValueType) {
			t.Fatalf("uint32: %v", err)
		}
		if _, err := UnmarshalSnapshot[uint64](valid); !errors.Is(err, wire.ErrValueType) {
			t.Fatalf("uint64: %v", err)
		}
	})

	t.Run("family mismatch at package decoder", func(t *testing.T) {
		// The root dispatcher routes by family; the per-family decoders must
		// still reject a foreign family themselves.
		quantBlob := mustMarshal(t, goldenSnapshots[float32](t)["quantile"])
		if _, err := frequency.UnmarshalSnapshot[float32](quantBlob); !errors.Is(err, wire.ErrFamily) {
			t.Fatalf("frequency decoder on quantile blob: %v", err)
		}
		if _, err := quantile.UnmarshalSnapshot[float32](valid); !errors.Is(err, wire.ErrFamily) {
			t.Fatalf("quantile decoder on frequency blob: %v", err)
		}
		if _, err := frugal.UnmarshalSnapshot[float32](valid); !errors.Is(err, wire.ErrFamily) {
			t.Fatalf("frugal decoder on frequency blob: %v", err)
		}
	})

	t.Run("keyed blob at the unkeyed entry point", func(t *testing.T) {
		// A keyed blob is a known family the unkeyed dispatcher cannot
		// produce a Snapshot[T] for: it must fail with ErrFamily (steering
		// the caller to UnmarshalKeyedSnapshot), and the keyed decoder must
		// reject unkeyed blobs the same way.
		keyedBlob := mustMarshalKeyed(t, goldenKeyedSnapshot[uint64, float32](t))
		s, err := UnmarshalSnapshot[float32](keyedBlob)
		if s != nil || !errors.Is(err, wire.ErrFamily) {
			t.Fatalf("unkeyed decoder on keyed blob: (%v, %v), want wrapped ErrFamily", s, err)
		}
		if _, err := UnmarshalKeyedSnapshot[uint64, float32](valid); !errors.Is(err, wire.ErrFamily) {
			t.Fatalf("keyed decoder on frequency blob: %v", err)
		}
	})

	t.Run("overflowed length does not drive allocation", func(t *testing.T) {
		// The count field claims 4G entries; decode must fail before sizing
		// anything by it. A handful of allocations (reader, error wrapping)
		// is fine — hundreds of megabytes is not.
		allocs := testing.AllocsPerRun(20, func() {
			_, err := UnmarshalSnapshot[float32](freqOverflow)
			if err == nil {
				t.Fatal("decoded")
			}
		})
		if allocs > 16 {
			t.Fatalf("%v allocations decoding an overflowed length field", allocs)
		}
	})
}
